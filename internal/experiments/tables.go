package experiments

import (
	"goear/internal/report"
	"goear/internal/sim"
	"goear/internal/workload"
)

// Table1 reproduces Table I: kernel metrics under min_energy_to_solution
// with hardware IMC selection, for the motivation kernels (BT-MZ.C over
// 4 nodes, LU.D over 2 nodes).
func (c *Context) Table1() ([]report.Table, error) {
	t := report.Table{
		Title:   "Table I: kernel metrics under min_energy with hardware IMC selection",
		Columns: []string{"kernel", "CPI", "GB/s", "CPU freq (GHz)", "IMC freq (GHz)"},
	}
	names := []string{workload.BTMZMotiv, workload.LUDMotiv}
	rows, err := mapRows(c, names, func(name string) (sim.Result, error) {
		return c.run(name, sim.Options{Policy: "min_energy", Seed: 10})
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		r := rows[i]
		if err := t.AddRow(name, report.F(r.AvgCPI, 2), report.F(r.AvgGBs, 2),
			report.GHz(r.AvgCPUGHz), report.GHz(r.AvgIMCGHz)); err != nil {
			return nil, err
		}
	}
	return []report.Table{t}, nil
}

// Table2 reproduces Table II: single-node kernel characteristics at
// nominal frequency.
func (c *Context) Table2() ([]report.Table, error) {
	t := report.Table{
		Title:   "Table II: single node kernels",
		Columns: []string{"kernel", "prog. model", "time (s)", "CPI", "GB/s", "avg DC power (W)"},
	}
	type row struct {
		progModel string
		r         sim.Result
	}
	rows, err := mapRows(c, workload.Kernels(), func(name string) (row, error) {
		spec, err := workload.Lookup(name)
		if err != nil {
			return row{}, err
		}
		r, err := c.baseline(name)
		if err != nil {
			return row{}, err
		}
		return row{spec.ProgModel, r}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range workload.Kernels() {
		r := rows[i].r
		if err := t.AddRow(name, rows[i].progModel, report.F(r.TimeSec, 0),
			report.F(r.AvgCPI, 2), report.F(r.AvgGBs, 2), report.F(r.AvgPowerW, 0)); err != nil {
			return nil, err
		}
	}
	return []report.Table{t}, nil
}

// Table3 reproduces Table III: kernel time penalty / power saving /
// energy saving for ME and ME+eU (cpu_policy_th 5%, unc_policy_th 2%).
func (c *Context) Table3() ([]report.Table, error) {
	t := report.Table{
		Title: "Table III: single node kernels evaluation (cpu_th 5%, unc_th 2%)",
		Columns: []string{"kernel",
			"time penalty ME", "time penalty ME+eU",
			"power saving ME", "power saving ME+eU",
			"energy saving ME", "energy saving ME+eU"},
	}
	type row struct{ me, eu Delta }
	rows, err := mapRows(c, workload.Kernels(), func(name string) (row, error) {
		me, err := c.compare(name, sim.Options{Policy: "min_energy", Seed: 20})
		if err != nil {
			return row{}, err
		}
		eu, err := c.compare(name, sim.Options{Policy: "min_energy_eufs", Seed: 20})
		if err != nil {
			return row{}, err
		}
		return row{me, eu}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range workload.Kernels() {
		me, eu := rows[i].me, rows[i].eu
		if err := t.AddRow(name,
			report.Pct(me.TimePenaltyPct), report.Pct(eu.TimePenaltyPct),
			report.Pct(me.PowerSavingPct), report.Pct(eu.PowerSavingPct),
			report.Pct(me.EnergySavingPct), report.Pct(eu.EnergySavingPct)); err != nil {
			return nil, err
		}
	}
	return []report.Table{t}, nil
}

// Table4 reproduces Table IV: average CPU and IMC frequency for the
// kernels under No policy / ME / ME+eU.
func (c *Context) Table4() ([]report.Table, error) {
	t := report.Table{
		Title:   "Table IV: avg CPU and IMC frequency domains (kernels)",
		Columns: []string{"kernel", "dom", "No policy", "ME", "ME+eU"},
	}
	type row struct{ base, me, eu sim.Result }
	rows, err := mapRows(c, workload.Kernels(), func(name string) (row, error) {
		base, err := c.baseline(name)
		if err != nil {
			return row{}, err
		}
		me, err := c.run(name, sim.Options{Policy: "min_energy", Seed: 20})
		if err != nil {
			return row{}, err
		}
		eu, err := c.run(name, sim.Options{Policy: "min_energy_eufs", Seed: 20})
		if err != nil {
			return row{}, err
		}
		return row{base, me, eu}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range workload.Kernels() {
		base, me, eu := rows[i].base, rows[i].me, rows[i].eu
		if err := t.AddRow(name, "CPU", report.GHz(base.AvgCPUGHz),
			report.GHz(me.AvgCPUGHz), report.GHz(eu.AvgCPUGHz)); err != nil {
			return nil, err
		}
		if err := t.AddRow(name, "IMC", report.GHz(base.AvgIMCGHz),
			report.GHz(me.AvgIMCGHz), report.GHz(eu.AvgIMCGHz)); err != nil {
			return nil, err
		}
	}
	return []report.Table{t}, nil
}

// Table5 reproduces Table V: MPI application characteristics at nominal
// frequency.
func (c *Context) Table5() ([]report.Table, error) {
	t := report.Table{
		Title:   "Table V: MPI applications",
		Columns: []string{"application", "time (s)", "CPI", "GB/s", "avg DC power (W)"},
	}
	rows, err := mapRows(c, workload.Applications(), c.baseline)
	if err != nil {
		return nil, err
	}
	for i, name := range workload.Applications() {
		r := rows[i]
		if err := t.AddRow(name, report.F(r.TimeSec, 2), report.F(r.AvgCPI, 2),
			report.F(r.AvgGBs, 2), report.F(r.AvgPowerW, 2)); err != nil {
			return nil, err
		}
	}
	return []report.Table{t}, nil
}

// appCPUTh returns the paper's per-application cpu_policy_th: 3% for
// BQCD, 5% elsewhere.
func appCPUTh(name string) float64 {
	if name == workload.BQCD {
		return 0.03
	}
	return 0.05
}

// Table6 reproduces Table VI: average CPU and IMC frequency per
// application under No policy / ME / ME+eU.
func (c *Context) Table6() ([]report.Table, error) {
	t := report.Table{
		Title:   "Table VI: avg CPU and IMC frequency domains (applications)",
		Columns: []string{"application", "dom", "No policy", "ME", "ME+eU"},
	}
	type row struct{ base, me, eu sim.Result }
	rows, err := mapRows(c, workload.Applications(), func(name string) (row, error) {
		th := appCPUTh(name)
		base, err := c.baseline(name)
		if err != nil {
			return row{}, err
		}
		me, err := c.run(name, sim.Options{Policy: "min_energy", CPUTh: sim.F(th), Seed: 30})
		if err != nil {
			return row{}, err
		}
		eu, err := c.run(name, sim.Options{Policy: "min_energy_eufs", CPUTh: sim.F(th), Seed: 30})
		if err != nil {
			return row{}, err
		}
		return row{base, me, eu}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range workload.Applications() {
		base, me, eu := rows[i].base, rows[i].me, rows[i].eu
		if err := t.AddRow(name, "CPU", report.GHz(base.AvgCPUGHz),
			report.GHz(me.AvgCPUGHz), report.GHz(eu.AvgCPUGHz)); err != nil {
			return nil, err
		}
		if err := t.AddRow(name, "IMC", report.GHz(base.AvgIMCGHz),
			report.GHz(me.AvgIMCGHz), report.GHz(eu.AvgIMCGHz)); err != nil {
			return nil, err
		}
	}
	return []report.Table{t}, nil
}

// table7Apps is the application list of Table VII (GROMACS(I) omitted,
// as in the paper).
func table7Apps() []string {
	return []string{
		workload.BQCD, workload.BTMZD, workload.GromacsII, workload.HPCG,
		workload.POP, workload.DUMSES, workload.AFiD,
	}
}

// Table7 reproduces Table VII: DC node power savings vs RAPL PCK power
// savings under ME+eU.
func (c *Context) Table7() ([]report.Table, error) {
	t := report.Table{
		Title:   "Table VII: DC node power savings vs RAPL PCK power savings (ME+eU)",
		Columns: []string{"application", "DC node power", "RAPL PCK power"},
	}
	rows, err := mapRows(c, table7Apps(), func(name string) (Delta, error) {
		return c.compare(name, sim.Options{
			Policy: "min_energy_eufs", CPUTh: sim.F(appCPUTh(name)), Seed: 30,
		})
	})
	if err != nil {
		return nil, err
	}
	for i, name := range table7Apps() {
		d := rows[i]
		if err := t.AddRow(name, report.Pct(d.PowerSavingPct), report.Pct(d.PkgSavingPct)); err != nil {
			return nil, err
		}
	}
	return []report.Table{t}, nil
}

// Summary reproduces the headline numbers of the abstract and §VIII:
// average and maximum energy saving and time penalty of ME+eU across
// the applications.
func (c *Context) Summary() ([]report.Table, error) {
	t := report.Table{
		Title:   "Summary: ME+eU across MPI applications (paper: avg energy save ~9%, avg time penalty ~3%)",
		Columns: []string{"metric", "average", "maximum"},
	}
	deltas, err := mapRows(c, workload.Applications(), func(name string) (Delta, error) {
		return c.compare(name, sim.Options{
			Policy: "min_energy_eufs", CPUTh: sim.F(appCPUTh(name)), Seed: 30,
		})
	})
	if err != nil {
		return nil, err
	}
	var eSum, tSum, eMax, tMax float64
	for _, d := range deltas {
		eSum += d.EnergySavingPct
		tSum += d.TimePenaltyPct
		if d.EnergySavingPct > eMax {
			eMax = d.EnergySavingPct
		}
		if d.TimePenaltyPct > tMax {
			tMax = d.TimePenaltyPct
		}
	}
	n := float64(len(deltas))
	if err := t.AddRow("energy saving", report.Pct(eSum/n), report.Pct(eMax)); err != nil {
		return nil, err
	}
	if err := t.AddRow("time penalty", report.Pct(tSum/n), report.Pct(tMax)); err != nil {
		return nil, err
	}
	return []report.Table{t}, nil
}
