package experiments

import (
	"strconv"
	"strings"
	"testing"

	"goear/internal/sim"
	"goear/internal/workload"
)

// parsePct converts a "12.34%" cell back to a float.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestIDsAndUnknown(t *testing.T) {
	ids := IDs()
	if len(ids) != 19 {
		t.Errorf("IDs = %v (%d), want 19 experiments", ids, len(ids))
	}
	c := NewQuick()
	if _, err := c.Generate("nope"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestTable2Structure(t *testing.T) {
	c := NewQuick()
	tabs, err := c.Table2()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 kernels", len(tab.Rows))
	}
	// First row is BT-MZ.C with the published characteristics.
	r := tab.Rows[0]
	if r[0] != workload.BTMZC {
		t.Errorf("row 0 kernel = %q", r[0])
	}
	if tm := parseF(t, r[2]); tm < 140 || tm > 150 {
		t.Errorf("BT-MZ.C time = %v, want ~145", tm)
	}
	if p := parseF(t, r[5]); p < 325 || p > 340 {
		t.Errorf("BT-MZ.C power = %v, want ~332", p)
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	c := NewQuick()
	tabs, err := c.Table3()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	for _, row := range tab.Rows {
		me := parsePct(t, row[5])   // energy saving ME
		eu := parsePct(t, row[6])   // energy saving ME+eU
		tpEU := parsePct(t, row[2]) // time penalty ME+eU
		// Explicit UFS must add savings over ME on every kernel
		// except DGEMM, where the paper also reports ~1% vs 0%.
		if row[0] != workload.DGEMM && eu < me {
			t.Errorf("%s: eUFS saving %.2f%% below ME %.2f%%", row[0], eu, me)
		}
		if tpEU > 3 {
			t.Errorf("%s: eUFS time penalty %.2f%%, want <= 3%% (paper max 1%%)", row[0], tpEU)
		}
	}
	// BT.CUDA: both configurations save ~10% (busy-wait host).
	for _, row := range tab.Rows {
		if row[0] == workload.BTCUDA {
			if me := parsePct(t, row[5]); me < 7 {
				t.Errorf("BT.CUDA ME saving = %.2f%%, want ~10%%", me)
			}
		}
	}
}

func TestTable4FrequencyDomains(t *testing.T) {
	c := NewQuick()
	tabs, err := c.Table4()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 (5 kernels x 2 domains)", len(tab.Rows))
	}
	byKernelDom := map[string][]string{}
	for _, row := range tab.Rows {
		byKernelDom[row[0]+"/"+row[1]] = row
	}
	// BT-MZ.C: CPU untouched everywhere; IMC lowered only by eUFS
	// (paper: 2.39 / 2.39 / 1.98).
	r := byKernelDom[workload.BTMZC+"/IMC"]
	if base, eu := parseF(t, r[2]), parseF(t, r[4]); !(base > 2.3 && eu < 2.15 && eu > 1.8) {
		t.Errorf("BT-MZ.C IMC row = %v, want 2.39 -> ~1.98", r)
	}
	// DGEMM: the AVX512 licence keeps CPU at ~2.2 in all configs.
	r = byKernelDom[workload.DGEMM+"/CPU"]
	for i := 2; i <= 4; i++ {
		if f := parseF(t, r[i]); f < 2.1 || f > 2.25 {
			t.Errorf("DGEMM CPU col %d = %v, want ~2.18", i, f)
		}
	}
	// BT.CUDA: hardware collapses the uncore under ME (paper 1.51).
	r = byKernelDom[workload.BTCUDA+"/IMC"]
	if me := parseF(t, r[3]); me > 1.8 {
		t.Errorf("BT.CUDA ME IMC = %v, want ~1.5", me)
	}
}

func TestFig1SweepShape(t *testing.T) {
	c := NewQuick()
	tabs, err := c.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("tables = %d, want 2 (BT-MZ and LU)", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 13 {
			t.Errorf("%s: rows = %d, want 13 (2.4..1.2 GHz)", tab.Title, len(tab.Rows))
		}
		// Power saving grows monotonically as the uncore drops.
		prev := -100.0
		for _, row := range tab.Rows {
			ps := parsePct(t, row[1])
			if ps < prev-0.3 { // small tolerance for noise
				t.Errorf("%s: power saving not monotone at %s GHz (%v after %v)",
					tab.Title, row[0], ps, prev)
			}
			prev = ps
		}
		// At the lowest uncore, the memory-dependent kernel pays real
		// time; and for LU the GB/s penalty must be visible.
		last := tab.Rows[len(tab.Rows)-1]
		if strings.Contains(tab.Title, workload.LUDMotiv) {
			if tp := parsePct(t, last[3]); tp < 3 {
				t.Errorf("LU at 1.2GHz: time penalty %.2f%%, want substantial", tp)
			}
			if gp := parsePct(t, last[4]); gp < 3 {
				t.Errorf("LU at 1.2GHz: GB/s penalty %.2f%%, want substantial", gp)
			}
		}
	}
}

func TestFig4ThresholdMonotonicity(t *testing.T) {
	c := NewQuick()
	tabs, err := c.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// Larger unc_policy_th must not reduce power savings.
	s0 := parsePct(t, tab.Rows[1][2])
	s2 := parsePct(t, tab.Rows[3][2])
	if s2 < s0-0.3 {
		t.Errorf("power saving at 2%% (%v) below 0%% threshold (%v)", s2, s0)
	}
	// Even at 0% threshold some saving remains (the paper's point —
	// though the magnitude is smaller here; see EXPERIMENTS.md on the
	// missing "free region" of the real silicon's latency response).
	if s0 < 0.3 {
		t.Errorf("unc_th 0%%: power saving %.2f%%, want > 0.3%%", s0)
	}
}

func TestRunCacheReuse(t *testing.T) {
	c := NewQuick()
	if _, err := c.run(workload.BTMZC, sim.Options{Policy: "none", Seed: 100}); err != nil {
		t.Fatal(err)
	}
	n := c.Stats().Runs
	if _, err := c.run(workload.BTMZC, sim.Options{Policy: "none", Seed: 100}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Runs; got != n {
		t.Errorf("cache grew on identical run: %d -> %d", n, got)
	}
	// Different thresholds are distinct entries.
	if _, err := c.run(workload.BTMZC, sim.Options{Policy: "min_energy", CPUTh: sim.F(0.03), Seed: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.run(workload.BTMZC, sim.Options{Policy: "min_energy", CPUTh: sim.F(0.05), Seed: 100}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Runs != n+2 || got.RunsExecuted != got.Runs {
		t.Errorf("distinct options not cached separately: %+v", got)
	}
}

func TestSummaryBands(t *testing.T) {
	if testing.Short() {
		t.Skip("full-application sweep in short mode")
	}
	c := NewQuick()
	tabs, err := c.Summary()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	avgE := parsePct(t, tab.Rows[0][1])
	maxE := parsePct(t, tab.Rows[0][2])
	avgT := parsePct(t, tab.Rows[1][1])
	maxT := parsePct(t, tab.Rows[1][2])
	// Paper: avg energy ~8.75%, max 13.77%; avg penalty 2.91%, max 4.95%.
	if avgE < 4 || avgE > 13 {
		t.Errorf("avg energy saving = %.2f%%, want near the paper's ~9%%", avgE)
	}
	if maxE < 8 || maxE > 20 {
		t.Errorf("max energy saving = %.2f%%, want near the paper's ~14%%", maxE)
	}
	if avgT < 0 || avgT > 6 {
		t.Errorf("avg time penalty = %.2f%%, want near the paper's ~3%%", avgT)
	}
	if maxT > 9 {
		t.Errorf("max time penalty = %.2f%%, want bounded like the paper's ~5%%", maxT)
	}
}

func TestTable7ScopeGap(t *testing.T) {
	if testing.Short() {
		t.Skip("full-application sweep in short mode")
	}
	c := NewQuick()
	tabs, err := c.Table7()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 applications", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		dc := parsePct(t, row[1])
		pck := parsePct(t, row[2])
		// The paper's point: PCK-relative savings always look larger
		// than DC-relative savings, and the gap is not constant.
		if pck <= dc {
			t.Errorf("%s: PCK saving %.2f%% not above DC %.2f%%", row[0], pck, dc)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in short mode")
	}
	c := NewQuick()
	tabs, err := c.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 5 {
		t.Fatalf("ablation tables = %d, want 5 (A1-A5)", len(tabs))
	}
	// A2: without the AVX512 model, DGEMM saves less energy.
	a2 := tabs[1]
	with := parsePct(t, a2.Rows[0][3])
	without := parsePct(t, a2.Rows[1][3])
	if without > with+0.3 {
		t.Errorf("A2: default model saving %.2f%% above AVX512 model %.2f%%", without, with)
	}
}

func TestFig3ThresholdProgression(t *testing.T) {
	c := NewQuick()
	tabs, err := c.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want ME + three thresholds", len(tab.Rows))
	}
	// ME alone saves nothing on BQCD (CPU held at nominal by the 3%
	// threshold); savings grow monotonically with unc_policy_th.
	if me := parsePct(t, tab.Rows[0][3]); me > 1 {
		t.Errorf("ME energy saving = %v%%, want ~0", me)
	}
	prev := -1.0
	for _, row := range tab.Rows[1:] {
		s := parsePct(t, row[3])
		if s < prev-0.2 {
			t.Errorf("energy saving regressed at %s: %v after %v", row[0], s, prev)
		}
		prev = s
	}
	// Power must scale faster than time penalty (the paper's note).
	last := tab.Rows[len(tab.Rows)-1]
	if ps, tp := parsePct(t, last[2]), parsePct(t, last[1]); ps <= tp {
		t.Errorf("power saving %v%% not above time penalty %v%%", ps, tp)
	}
}

func TestFig5GuidedColumns(t *testing.T) {
	c := NewQuick()
	tabs, err := c.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 2 thresholds x 3 configs", len(tab.Rows))
	}
	// eUFS adds real savings over ME for GROMACS(I) at both thresholds.
	for _, idx := range [][2]int{{0, 2}, {3, 5}} {
		me := parsePct(t, tab.Rows[idx[0]][3])
		eu := parsePct(t, tab.Rows[idx[1]][3])
		if eu < me+2 {
			t.Errorf("rows %v: eUFS %v%% not clearly above ME %v%%", idx, eu, me)
		}
	}
}

func TestFig6EUFSBeatsME(t *testing.T) {
	c := NewQuick()
	tabs, err := c.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	me := parsePct(t, tab.Rows[0][3])
	eu := parsePct(t, tab.Rows[1][3])
	// Paper: ~14% for ME+eU on GROMACS(II), ME near zero.
	if eu < 8 || me > 2 {
		t.Errorf("GROMACS(II): ME %v%%, ME+eU %v%%, want ~0 and ~13", me, eu)
	}
}

func TestFig8ThresholdTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("large-application sweep in short mode")
	}
	c := NewQuick()
	tabs, err := c.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("tables = %d (DUMSES, AFiD)", len(tabs))
	}
	for _, tab := range tabs {
		// cpu_th 5% saves at least as much energy as 3%, at higher
		// penalty — the user-facing trade-off of the figure.
		e3 := parsePct(t, tab.Rows[1][3]) // ME+eU at 3%
		e5 := parsePct(t, tab.Rows[3][3]) // ME+eU at 5%
		t3 := parsePct(t, tab.Rows[1][1])
		t5 := parsePct(t, tab.Rows[3][1])
		if e5 < e3-0.3 {
			t.Errorf("%s: 5%% saving %v below 3%% saving %v", tab.Title, e5, e3)
		}
		if t5 < t3-0.3 {
			t.Errorf("%s: 5%% penalty %v below 3%% penalty %v", tab.Title, t5, t3)
		}
	}
}

func TestBaselinesStory(t *testing.T) {
	c := NewQuick()
	tabs, err := c.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// On HPCG the feedback controller (uncore only) leaves the DVFS
	// saving on the table.
	var hpcgEU, hpcgDUF float64
	for _, row := range tab.Rows {
		switch row[0] {
		case workload.HPCG + " / ME+eU":
			hpcgEU = parsePct(t, row[3])
		case workload.HPCG + " / duf":
			hpcgDUF = parsePct(t, row[3])
		}
	}
	if hpcgEU < hpcgDUF+5 {
		t.Errorf("HPCG: ME+eU %v%% not clearly above duf %v%%", hpcgEU, hpcgDUF)
	}
}

func TestFutureWorkStory(t *testing.T) {
	c := NewQuick()
	tabs, err := c.FutureWork()
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	// min_time on the CPU-bound kernel climbs to nominal and saves
	// ~nothing; the eUFS stage adds the uncore saving.
	mt := parsePct(t, tab.Rows[0][3])
	mteu := parsePct(t, tab.Rows[1][3])
	if mt > 1 {
		t.Errorf("min_time on BT-MZ saves %v%%, want ~0", mt)
	}
	if mteu < 3 {
		t.Errorf("min_time+eU on BT-MZ saves %v%%, want the uncore saving", mteu)
	}
}

func TestA1SettleTimeShowsGuidedAdvantage(t *testing.T) {
	c := NewQuick()
	tab, err := c.ablationSearch()
	if err != nil {
		t.Fatal(err)
	}
	guided := parseF(t, tab.Rows[0][4])
	fromMax := parseF(t, tab.Rows[1][4])
	if guided >= fromMax {
		t.Errorf("guided settle %vs not below from-max %vs", guided, fromMax)
	}
}

func TestModelAccuracyExperiment(t *testing.T) {
	c := NewQuick()
	tabs, err := c.ModelAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("tables = %d (SD530, CascadeLake)", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) < 5 {
			t.Fatalf("%s: rows = %d", tab.Title, len(tab.Rows))
		}
		// Near projections must be accurate (< 5% mean CPI error at the
		// first sampled pstate).
		if e := parsePct(t, tab.Rows[0][2]); e > 5 {
			t.Errorf("%s: near-projection error %v%%", tab.Title, e)
		}
		// Error generally grows with distance but stays bounded.
		last := tab.Rows[len(tab.Rows)-1]
		if e := parsePct(t, last[3]); e > 40 {
			t.Errorf("%s: far-projection max error %v%%", tab.Title, e)
		}
	}
}
