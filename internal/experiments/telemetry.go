package experiments

import (
	"sync/atomic"

	"goear/internal/telemetry"
)

// Metric names (package-level constants per the goearvet telemetry
// analyzer).
const (
	metricExpCacheRequests = "goear_experiments_cache_requests_total"
	metricExpCacheComputes = "goear_experiments_cache_computes_total"
)

// expTel mirrors every context's cache activity into the global
// registry; handles are pre-resolved per cache label so the request
// path never hashes label strings.
type expTel struct {
	modelReq, calReq, runReq    *telemetry.Counter
	modelComp, calComp, runComp *telemetry.Counter
}

var tel atomic.Pointer[expTel]

func init() {
	telemetry.OnEnable(func(s *telemetry.Set) {
		if s == nil {
			tel.Store(nil)
			return
		}
		r := s.Registry
		req := r.CounterVec(metricExpCacheRequests, "singleflight cache requests by cache", "cache")
		comp := r.CounterVec(metricExpCacheComputes, "singleflight cache computations (misses) by cache", "cache")
		tel.Store(&expTel{
			modelReq:  req.With("model"),
			calReq:    req.With("calibration"),
			runReq:    req.With("run"),
			modelComp: comp.With("model"),
			calComp:   comp.With("calibration"),
			runComp:   comp.With("run"),
		})
	})
}
