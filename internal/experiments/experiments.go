// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated cluster: the motivation study (Table I,
// Fig. 1), the kernel evaluation (Tables II-IV), the application
// evaluation (Tables V-VI, Figs. 3-8), the instrumentation-scope
// comparison (Table VII), the headline summary, and the ablations of
// the design choices called out in DESIGN.md.
//
// A Context caches trained models, calibrated workloads and simulation
// runs, so figures that share configurations (most do) reuse results.
// All caches are singleflight: concurrent generators asking for the
// same model, calibration or run share one computation instead of
// racing or duplicating it, and Context.Parallel bounds how much
// simulation work the generators fan out at once (see sched.go).
// Because every run's randomness derives from explicit seeds, the
// generated tables are byte-identical at any parallelism.
package experiments

import (
	"fmt"
	"sort"

	"goear/internal/eargm"
	"goear/internal/model"
	"goear/internal/report"
	"goear/internal/sim"
	"goear/internal/telemetry"
	"goear/internal/units"
	"goear/internal/workload"
)

// Context carries experiment configuration and caches.
type Context struct {
	// Runs is the number of averaged runs per configuration (the paper
	// uses three).
	Runs int
	// Parallel bounds the goroutines fanned out over independent
	// simulation work (table rows, averaged seeds, cluster nodes):
	// 0 = GOMAXPROCS (the default), 1 = fully sequential, n = n
	// workers. Results are identical at any setting.
	Parallel int
	// Exact disables the macro-step fast-forward the engine otherwise
	// enables on every campaign run (sim.Options.MacroStep). Macro
	// results agree with exact mode to ~1e-3 relative (the policy
	// trajectory is identical); set Exact for bit-exact per-tick
	// integration at several times the cost.
	Exact bool

	models flight[*model.Model]
	cals   flight[workload.Calibrated]
	runs   flight[sim.Result]

	// Cache activity, kept directly in telemetry counters (standalone
	// instruments; Stats() is a thin view over them). With global
	// telemetry enabled the same activity is also mirrored into the
	// goear_experiments_cache_* families across all contexts.
	modelRequests   telemetry.Counter
	calRequests     telemetry.Counter
	runRequests     telemetry.Counter
	modelsTrained   telemetry.Counter
	calibrationsRun telemetry.Counter
	runsExecuted    telemetry.Counter
}

// New returns a context with the paper's protocol (three runs).
func New() *Context { return &Context{Runs: 3} }

// NewQuick returns a single-run context for tests and fast previews.
func NewQuick() *Context { return &Context{Runs: 1} }

// NewFrom returns a context that shares src's trained models and
// workload calibrations (both immutable once built) but has a fresh run
// cache, so benchmarks re-execute simulations without re-training.
func NewFrom(src *Context) *Context {
	c := &Context{Runs: src.Runs, Parallel: src.Parallel, Exact: src.Exact}
	for k, v := range src.models.snapshot() {
		c.models.seed(k, v)
	}
	for k, v := range src.cals.snapshot() {
		c.cals.seed(k, v)
	}
	return c
}

// runCount is Runs with the paper's default applied.
func (c *Context) runCount() int {
	if c.Runs == 0 {
		return 3
	}
	return c.Runs
}

// cal returns the cached calibration of a catalogue workload,
// calibrating it exactly once however many goroutines ask.
func (c *Context) cal(name string) (workload.Calibrated, error) {
	c.calRequests.Inc()
	if t := tel.Load(); t != nil {
		t.calReq.Inc()
	}
	return c.cals.do(name, func() (workload.Calibrated, error) {
		spec, err := workload.Lookup(name)
		if err != nil {
			return workload.Calibrated{}, err
		}
		c.calibrationsRun.Inc()
		if t := tel.Load(); t != nil {
			t.calComp.Inc()
		}
		return spec.Calibrate()
	})
}

// modelFor returns the (lazily trained) energy model of a platform,
// training it exactly once however many goroutines ask.
func (c *Context) modelFor(pl workload.Platform) (*model.Model, error) {
	c.modelRequests.Inc()
	if t := tel.Load(); t != nil {
		t.modelReq.Inc()
	}
	return c.models.do(pl.Name, func() (*model.Model, error) {
		c.modelsTrained.Inc()
		if t := tel.Load(); t != nil {
			t.modelComp.Inc()
		}
		m, err := model.TrainForCPU(pl.Machine, pl.Power)
		if err != nil {
			return nil, fmt.Errorf("experiments: training model for %s: %w", pl.Name, err)
		}
		return m, nil
	})
}

// runKey canonicalises the options that distinguish cached runs. The
// options are resolved to their defaults first, so an unset threshold
// and an explicitly-supplied default value share a cache entry — they
// run identically.
func runKey(name string, o sim.Options, runs int) string {
	o = o.WithDefaults()
	fp := -1
	if o.FixedCPUPstate != nil {
		fp = *o.FixedCPUPstate
	}
	fu := uint64(0)
	if o.FixedUncoreRatio != nil {
		fu = *o.FixedUncoreRatio
	}
	return fmt.Sprintf("%s|%s|%.4f|%.4f|g%v|a%v|p%v|fp%d|fu%d|r%d|s%d|sc%.4f|w%.2f|st%.4f|n%.4f|d%v|m%v",
		name, o.Policy, *o.CPUTh, *o.UncTh, o.HWGuidedOff, o.NoAVX512Model,
		o.PinBothUncoreLimits, fp, fu, runs,
		o.Seed, o.SigChangeTh, o.MinWindowSec, o.StepSec, *o.NoiseSD, o.DecisionLog,
		o.MacroStep)
}

// run executes (or recalls) an averaged run of the named workload.
// Concurrent callers with the same configuration share one execution.
func (c *Context) run(name string, opt sim.Options) (sim.Result, error) {
	calw, err := c.cal(name)
	if err != nil {
		return sim.Result{}, err
	}
	if opt.Policy != "" && opt.Policy != "none" {
		m, err := c.modelFor(calw.Platform)
		if err != nil {
			return sim.Result{}, err
		}
		opt.Model = m
	}
	opt.Workers = c.workers()
	// Campaign runs macro-step by default (Exact opts out); per-run
	// requests cannot re-enable it under Exact, keeping the whole
	// campaign's integration mode uniform.
	opt.MacroStep = !c.Exact
	runs := c.runCount()
	c.runRequests.Inc()
	if t := tel.Load(); t != nil {
		t.runReq.Inc()
	}
	return c.runs.do(runKey(name, opt, runs), func() (sim.Result, error) {
		c.runsExecuted.Inc()
		if t := tel.Load(); t != nil {
			t.runComp.Inc()
		}
		return sim.RunAveraged(calw, opt, runs)
	})
}

// RunWorkload is the exported run entry point used by the goear facade:
// it executes (or recalls) an averaged run of the named catalogue
// workload, supplying the platform's trained model when a policy is
// requested.
func (c *Context) RunWorkload(name string, opt sim.Options) (sim.Result, error) {
	return c.run(name, opt)
}

// RunPowercapped executes the workload under a cluster power budget
// enforced by an EARGM instance (EAR's energy-control service). Results
// are not cached: the manager's trace is part of the outcome.
func (c *Context) RunPowercapped(name string, opt sim.Options, gmCfg eargm.Config) (sim.Result, eargm.Stats, error) {
	calw, err := c.cal(name)
	if err != nil {
		return sim.Result{}, eargm.Stats{}, err
	}
	if opt.Policy != "" && opt.Policy != "none" {
		m, err := c.modelFor(calw.Platform)
		if err != nil {
			return sim.Result{}, eargm.Stats{}, err
		}
		opt.Model = m
	}
	gm, err := eargm.New(gmCfg)
	if err != nil {
		return sim.Result{}, eargm.Stats{}, err
	}
	opt.Workers = c.workers()
	opt.MacroStep = !c.Exact
	r, err := sim.RunCoordinated(calw, opt, gm)
	if err != nil {
		return sim.Result{}, eargm.Stats{}, err
	}
	return r, gm.Stats(), nil
}

// baseline is the paper's reference: nominal CPU frequency, hardware
// UFS, no policy.
func (c *Context) baseline(name string) (sim.Result, error) {
	return c.run(name, sim.Options{Policy: "none", Seed: 100})
}

// Delta expresses a configuration against the baseline with the paper's
// reporting conventions: penalties positive when worse, savings positive
// when better.
type Delta struct {
	TimePenaltyPct  float64
	PowerSavingPct  float64
	EnergySavingPct float64
	GBsPenaltyPct   float64
	PkgSavingPct    float64
	AvgCPUGHz       float64
	AvgIMCGHz       float64
	EfficiencyRatio float64 // energy saving / time penalty
}

func deltaOf(base, r sim.Result) Delta {
	d := Delta{
		TimePenaltyPct:  units.PercentChange(base.TimeSec, r.TimeSec),
		PowerSavingPct:  -units.PercentChange(base.AvgPowerW, r.AvgPowerW),
		EnergySavingPct: -units.PercentChange(base.EnergyJ, r.EnergyJ),
		GBsPenaltyPct:   -units.PercentChange(base.AvgGBs, r.AvgGBs),
		PkgSavingPct:    -units.PercentChange(base.AvgPkgPowerW, r.AvgPkgPowerW),
		AvgCPUGHz:       r.AvgCPUGHz,
		AvgIMCGHz:       r.AvgIMCGHz,
	}
	if d.TimePenaltyPct > 0.01 {
		d.EfficiencyRatio = d.EnergySavingPct / d.TimePenaltyPct
	}
	return d
}

// compare runs a configuration and returns its Delta against baseline.
func (c *Context) compare(name string, opt sim.Options) (Delta, error) {
	base, err := c.baseline(name)
	if err != nil {
		return Delta{}, err
	}
	r, err := c.run(name, opt)
	if err != nil {
		return Delta{}, err
	}
	return deltaOf(base, r), nil
}

// Generator is one experiment's regeneration function.
type Generator func(*Context) ([]report.Table, error)

// generators maps experiment ids to their functions.
var generators = map[string]Generator{
	"table1":    (*Context).Table1,
	"fig1":      (*Context).Fig1,
	"table2":    (*Context).Table2,
	"table3":    (*Context).Table3,
	"table4":    (*Context).Table4,
	"table5":    (*Context).Table5,
	"table6":    (*Context).Table6,
	"fig3":      (*Context).Fig3,
	"fig4":      (*Context).Fig4,
	"fig5":      (*Context).Fig5,
	"fig6":      (*Context).Fig6,
	"fig7":      (*Context).Fig7,
	"fig8":      (*Context).Fig8,
	"table7":    (*Context).Table7,
	"summary":   (*Context).Summary,
	"ablations": (*Context).Ablations,
}

// IDs lists the experiment identifiers in presentation order.
func IDs() []string {
	out := make([]string, 0, len(generators))
	for id := range generators {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Generate regenerates the experiment with the given id.
func (c *Context) Generate(id string) ([]report.Table, error) {
	g, ok := generators[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return g(c)
}
