package earl

import (
	"errors"
	"testing"

	"goear/internal/metrics"
	"goear/internal/policy"
)

// fakeCtl simulates a node whose counters advance linearly with time.
type fakeCtl struct {
	now       float64
	ipsRate   float64 // instructions per second
	cpi       float64
	gbsRate   float64
	powerW    float64
	pstate    int
	uncMin    uint64
	uncMax    uint64
	uncCur    uint64
	setPstate []int
	setUncore [][2]uint64
	failSet   bool
}

func newFakeCtl() *fakeCtl {
	return &fakeCtl{
		ipsRate: 4e10, cpi: 0.5, gbsRate: 30, powerW: 330,
		pstate: 1, uncMin: 12, uncMax: 24, uncCur: 24,
	}
}

func (f *fakeCtl) SetCPUPstate(p int) error {
	if f.failSet {
		return errors.New("actuation failure")
	}
	f.pstate = p
	f.setPstate = append(f.setPstate, p)
	return nil
}

func (f *fakeCtl) SetUncoreLimits(minR, maxR uint64) error {
	if f.failSet {
		return errors.New("actuation failure")
	}
	f.uncMin, f.uncMax = minR, maxR
	if f.uncCur > maxR {
		f.uncCur = maxR
	}
	if f.uncCur < minR {
		f.uncCur = minR
	}
	f.setUncore = append(f.setUncore, [2]uint64{minR, maxR})
	return nil
}

func (f *fakeCtl) CurrentPstate() (int, error)         { return f.pstate, nil }
func (f *fakeCtl) CurrentUncoreRatio() (uint64, error) { return f.uncCur, nil }

func (f *fakeCtl) Counters() (metrics.Sample, error) {
	t := f.now
	instr := f.ipsRate * t
	return metrics.Sample{
		TimeSec:         t,
		Instructions:    instr,
		CoreCycles:      instr * f.cpi,
		DRAMBytes:       f.gbsRate * 1e9 * t,
		EnergyJ:         f.powerW * t,
		CoreFreqSeconds: 2.38 * t,
		IMCFreqSeconds:  2.39 * t,
	}, nil
}

// scriptedPolicy returns canned responses and records inputs.
type scriptedPolicy struct {
	applies []struct {
		nf policy.NodeFreqs
		st policy.State
	}
	applyCount    int
	validateOK    bool
	validateCalls int
	resets        int
	def           policy.NodeFreqs
}

func (s *scriptedPolicy) Name() string { return "scripted" }

func (s *scriptedPolicy) Apply(in policy.Inputs) (policy.NodeFreqs, policy.State, error) {
	i := s.applyCount
	if i >= len(s.applies) {
		i = len(s.applies) - 1
	}
	s.applyCount++
	a := s.applies[i]
	return a.nf, a.st, nil
}

func (s *scriptedPolicy) Validate(policy.Inputs) bool { s.validateCalls++; return s.validateOK }
func (s *scriptedPolicy) Default() policy.NodeFreqs   { return s.def }
func (s *scriptedPolicy) Reset()                      { s.resets++ }

// runIterations feeds n iterations of an MPI pattern at the given
// iteration period.
func runIterations(t *testing.T, l *Library, ctl *fakeCtl, pattern []uint32, n int, period float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		for _, ev := range pattern {
			ctl.now += period / float64(len(pattern))
			if err := l.OnMPICall(ev, ctl.now); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, newFakeCtl()); err == nil {
		t.Error("expected error for missing policy")
	}
	sp := &scriptedPolicy{applies: []struct {
		nf policy.NodeFreqs
		st policy.State
	}{{policy.NodeFreqs{CPUPstate: 1}, policy.Ready}}, validateOK: true}
	if _, err := New(Config{Policy: sp}, nil); err == nil {
		t.Error("expected error for missing ctl")
	}
}

func TestSignatureCadenceRespectsMinWindow(t *testing.T) {
	ctl := newFakeCtl()
	sp := &scriptedPolicy{applies: []struct {
		nf policy.NodeFreqs
		st policy.State
	}{{policy.NodeFreqs{CPUPstate: 1}, policy.Ready}}, validateOK: true}
	l, err := New(Config{Policy: sp}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	pattern := []uint32{1, 2, 3, 4}
	// 1 s per iteration: after 9 iterations (9s) no signature may exist;
	// a couple more crosses the 10 s window.
	runIterations(t, l, ctl, pattern, 9, 1.0)
	if l.Signatures() != 0 {
		t.Errorf("signatures before 10s = %d, want 0", l.Signatures())
	}
	runIterations(t, l, ctl, pattern, 3, 1.0)
	if l.Signatures() != 1 {
		t.Errorf("signatures after 12s = %d, want 1", l.Signatures())
	}
	if !l.LoopDetected() {
		t.Error("loop not detected")
	}
	// Dynais needs MinRepetitions patterns to lock, so of 12 fed
	// iterations at least 9 are counted.
	if l.Iterations() < 9 {
		t.Errorf("iterations = %d, want >= 9", l.Iterations())
	}
}

func TestPolicyAppliedAndFrequenciesSet(t *testing.T) {
	ctl := newFakeCtl()
	sp := &scriptedPolicy{
		applies: []struct {
			nf policy.NodeFreqs
			st policy.State
		}{{policy.NodeFreqs{CPUPstate: 5, SetIMC: true, IMCMinRatio: 12, IMCMaxRatio: 20}, policy.Ready}},
		validateOK: true,
	}
	l, err := New(Config{Policy: sp}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	runIterations(t, l, ctl, []uint32{1, 2}, 15, 1.0)
	if sp.applyCount != 1 {
		t.Fatalf("policy applied %d times, want 1", sp.applyCount)
	}
	if len(ctl.setPstate) != 1 || ctl.setPstate[0] != 5 {
		t.Errorf("pstate actuations = %v, want [5]", ctl.setPstate)
	}
	if len(ctl.setUncore) != 1 || ctl.setUncore[0] != [2]uint64{12, 20} {
		t.Errorf("uncore actuations = %v, want [[12 20]]", ctl.setUncore)
	}
	if l.State() != ValidatePolicy {
		t.Errorf("state = %v, want VALIDATE_POLICY", l.State())
	}
	// Subsequent signatures validate.
	runIterations(t, l, ctl, []uint32{1, 2}, 12, 1.0)
	if sp.validateCalls == 0 {
		t.Error("validate never called")
	}
}

func TestContinueKeepsApplying(t *testing.T) {
	// An iterative (eUFS-style) policy returning CONTINUE is re-applied
	// on every signature until READY.
	ctl := newFakeCtl()
	sp := &scriptedPolicy{
		applies: []struct {
			nf policy.NodeFreqs
			st policy.State
		}{
			{policy.NodeFreqs{CPUPstate: 1, SetIMC: true, IMCMinRatio: 12, IMCMaxRatio: 23}, policy.Continue},
			{policy.NodeFreqs{CPUPstate: 1, SetIMC: true, IMCMinRatio: 12, IMCMaxRatio: 22}, policy.Continue},
			{policy.NodeFreqs{CPUPstate: 1, SetIMC: true, IMCMinRatio: 12, IMCMaxRatio: 22}, policy.Ready},
		},
		validateOK: true,
	}
	l, err := New(Config{Policy: sp}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	runIterations(t, l, ctl, []uint32{1, 2, 3}, 40, 1.0)
	if sp.applyCount != 3 {
		t.Errorf("policy applied %d times, want 3", sp.applyCount)
	}
	if got := len(ctl.setUncore); got != 3 {
		t.Errorf("uncore actuations = %d, want 3", got)
	}
	if l.State() != ValidatePolicy {
		t.Errorf("state = %v, want VALIDATE_POLICY", l.State())
	}
}

func TestValidationFailureRestoresDefaults(t *testing.T) {
	ctl := newFakeCtl()
	sp := &scriptedPolicy{
		applies: []struct {
			nf policy.NodeFreqs
			st policy.State
		}{{policy.NodeFreqs{CPUPstate: 6}, policy.Ready}},
		validateOK: false,
		def:        policy.NodeFreqs{CPUPstate: 1, SetIMC: true, IMCMinRatio: 12, IMCMaxRatio: 24},
	}
	l, err := New(Config{Policy: sp}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	// First signature applies (READY), second fails validation.
	runIterations(t, l, ctl, []uint32{1, 2}, 24, 1.0)
	if sp.resets == 0 {
		t.Error("policy never reset after failed validation")
	}
	if ctl.pstate != 1 {
		t.Errorf("pstate = %d, want default 1 restored", ctl.pstate)
	}
	if l.State() != NodePolicy {
		t.Errorf("state = %v, want NODE_POLICY (re-application)", l.State())
	}
}

func TestSignatureChangeReappliesPolicy(t *testing.T) {
	ctl := newFakeCtl()
	sp := &scriptedPolicy{
		applies: []struct {
			nf policy.NodeFreqs
			st policy.State
		}{{policy.NodeFreqs{CPUPstate: 1}, policy.Ready}},
		validateOK: true,
		def:        policy.NodeFreqs{CPUPstate: 1},
	}
	l, err := New(Config{Policy: sp}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	// Settle: apply + stable reference.
	runIterations(t, l, ctl, []uint32{1, 2}, 36, 1.0)
	applied := sp.applyCount
	if applied != 1 {
		t.Fatalf("applied %d times before change, want 1", applied)
	}
	// The application's behaviour shifts drastically (memory phase).
	ctl.cpi = 1.2
	runIterations(t, l, ctl, []uint32{1, 2}, 24, 1.0)
	if sp.applyCount <= applied {
		t.Error("policy not re-applied after signature change")
	}
	if sp.resets == 0 {
		t.Error("policy not reset on signature change")
	}
}

func TestTimeGuidedModeWithoutMPI(t *testing.T) {
	ctl := newFakeCtl()
	sp := &scriptedPolicy{
		applies: []struct {
			nf policy.NodeFreqs
			st policy.State
		}{{policy.NodeFreqs{CPUPstate: 3}, policy.Ready}},
		validateOK: true,
	}
	l, err := New(Config{Policy: sp}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ctl.now += 1.0
		if err := l.OnTick(ctl.now); err != nil {
			t.Fatal(err)
		}
	}
	if sp.applyCount == 0 {
		t.Error("time-guided policy never applied")
	}
	if ctl.pstate != 3 {
		t.Errorf("pstate = %d, want 3", ctl.pstate)
	}
	if l.LoopDetected() {
		t.Error("no loop should be detected without MPI events")
	}
}

func TestOnTickIsNoOpWhileLocked(t *testing.T) {
	ctl := newFakeCtl()
	sp := &scriptedPolicy{
		applies: []struct {
			nf policy.NodeFreqs
			st policy.State
		}{{policy.NodeFreqs{CPUPstate: 1}, policy.Ready}},
		validateOK: true,
	}
	l, err := New(Config{Policy: sp}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	runIterations(t, l, ctl, []uint32{1, 2}, 15, 1.0)
	sigs := l.Signatures()
	// Ticks while locked must not produce time-guided signatures.
	for i := 0; i < 30; i++ {
		ctl.now += 1
		if err := l.OnTick(ctl.now); err != nil {
			t.Fatal(err)
		}
	}
	if l.Signatures() != sigs {
		t.Errorf("ticks produced %d signatures while locked", l.Signatures()-sigs)
	}
}

func TestEventsTraceRecorded(t *testing.T) {
	ctl := newFakeCtl()
	sp := &scriptedPolicy{
		applies: []struct {
			nf policy.NodeFreqs
			st policy.State
		}{{policy.NodeFreqs{CPUPstate: 2}, policy.Ready}},
		validateOK: true,
	}
	l, err := New(Config{Policy: sp}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	runIterations(t, l, ctl, []uint32{1, 2}, 30, 1.0)
	evs := l.Events()
	if len(evs) < 2 {
		t.Fatalf("events = %d, want >= 2", len(evs))
	}
	if evs[0].State != NodePolicy || !evs[0].Applied {
		t.Errorf("first event = %+v, want applied NODE_POLICY", evs[0])
	}
	if evs[1].State != ValidatePolicy {
		t.Errorf("second event = %+v, want VALIDATE_POLICY", evs[1])
	}
}

func TestActuationErrorsPropagate(t *testing.T) {
	ctl := newFakeCtl()
	ctl.failSet = true
	sp := &scriptedPolicy{
		applies: []struct {
			nf policy.NodeFreqs
			st policy.State
		}{{policy.NodeFreqs{CPUPstate: 2}, policy.Ready}},
		validateOK: true,
	}
	l, err := New(Config{Policy: sp}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for i := 0; i < 30 && !sawErr; i++ {
		for _, ev := range []uint32{1, 2} {
			ctl.now += 0.5
			if err := l.OnMPICall(ev, ctl.now); err != nil {
				sawErr = true
			}
		}
	}
	if !sawErr {
		t.Error("actuation failure never propagated")
	}
}

func TestStateString(t *testing.T) {
	if NodePolicy.String() != "NODE_POLICY" || ValidatePolicy.String() != "VALIDATE_POLICY" {
		t.Error("state names wrong")
	}
	if State(7).String() == "" {
		t.Error("unknown state must format")
	}
}
