// Package earl implements the EAR Library runtime: the dynamic,
// transparent component that attaches to a running application,
// discovers its iterative structure (Dynais for MPI codes, time-guided
// otherwise), computes loop signatures every ten or more seconds, and
// drives the configured energy policy through the paper's Code 1 state
// machine:
//
//	NODE_POLICY    — apply the policy on each new signature until it
//	                 reports READY, actuating the frequencies it picks;
//	VALIDATE_POLICY — check subsequent signatures against the policy's
//	                 expectations; on failure restore defaults and
//	                 re-enter NODE_POLICY.
//
// While validated-stable, EARL watches for application signature changes
// (15 % on CPI or GB/s by default) and re-applies the policy when the
// behaviour shifts.
package earl

import (
	"fmt"

	"goear/internal/dynais"
	"goear/internal/metrics"
	"goear/internal/policy"
)

// Ctl is EARL's view of the node: counter access and frequency
// actuation. The simulator's node implements it; on real hardware it
// would be backed by msr/cpufreq.
type Ctl interface {
	// SetCPUPstate requests the pstate on every socket.
	SetCPUPstate(p int) error
	// SetUncoreLimits programs MSR 0x620 on every socket.
	SetUncoreLimits(minRatio, maxRatio uint64) error
	// CurrentPstate returns the currently requested pstate.
	CurrentPstate() (int, error)
	// CurrentUncoreRatio returns the operating uncore ratio (MSR 0x621).
	CurrentUncoreRatio() (uint64, error)
	// Counters snapshots the node's cumulative counters; EARL fills in
	// the iteration count itself.
	Counters() (metrics.Sample, error)
}

// State is the Code 1 runtime state.
type State int

// Runtime states.
const (
	NodePolicy State = iota
	ValidatePolicy
)

// String names the state.
func (s State) String() string {
	switch s {
	case NodePolicy:
		return "NODE_POLICY"
	case ValidatePolicy:
		return "VALIDATE_POLICY"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config parameterises the library.
type Config struct {
	// Policy is the energy policy plugin to drive.
	Policy policy.Policy
	// MinWindowSec is the minimum signature window (>= the DC energy
	// meter's resolution; the paper uses 10 s).
	MinWindowSec float64
	// SigChangeTh re-applies the policy when a stable signature drifts
	// beyond this relative threshold (the paper accepts 15 %).
	SigChangeTh float64
	// MaxLoopPeriod bounds Dynais period detection.
	MaxLoopPeriod int
	// NestingLevels is how many Dynais levels are stacked (default 2:
	// inner loop plus one nesting level, enough for the outer time-step
	// structure of the paper's applications).
	NestingLevels int
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.MinWindowSec == 0 {
		c.MinWindowSec = metrics.MinWindowSeconds
	}
	if c.SigChangeTh == 0 {
		c.SigChangeTh = 0.15
	}
	if c.MaxLoopPeriod == 0 {
		c.MaxLoopPeriod = 64
	}
	if c.NestingLevels == 0 {
		c.NestingLevels = 2
	}
	return c
}

// Event records one signature-handling decision for tracing.
type Event struct {
	TimeSec     float64
	Sig         metrics.Signature
	State       State
	PolicyState policy.State
	Freqs       policy.NodeFreqs
	Applied     bool
	Validated   bool
	SigChange   bool
	// Pred is the policy's model projection behind this decision (zero
	// when the policy exposes none); HavePred distinguishes the two.
	Pred     policy.PredictionView
	HavePred bool
}

// Library is one node's EARL instance.
type Library struct {
	cfg Config
	ctl Ctl
	dyn *dynais.Hierarchy

	state      State
	last       metrics.Sample
	haveLast   bool
	lastSigAt  float64
	iterations int

	stable     metrics.Signature
	haveStable bool

	events []Event
	// signatures counted, for introspection
	sigCount int
}

// New builds a library instance. Call Start before feeding events.
func New(cfg Config, ctl Ctl) (*Library, error) {
	cfg = cfg.Defaults()
	if cfg.Policy == nil {
		return nil, fmt.Errorf("earl: missing policy")
	}
	if ctl == nil {
		return nil, fmt.Errorf("earl: missing node control")
	}
	d, err := dynais.NewHierarchy(cfg.NestingLevels, cfg.MaxLoopPeriod)
	if err != nil {
		return nil, err
	}
	return &Library{cfg: cfg, ctl: ctl, dyn: d, state: NodePolicy}, nil
}

// Start records the baseline counter sample at application begin.
func (l *Library) Start(now float64) error {
	s, err := l.ctl.Counters()
	if err != nil {
		return err
	}
	s.TimeSec = now
	s.Iterations = 0
	l.last, l.haveLast = s, true
	l.lastSigAt = now
	return nil
}

// OnMPICall feeds one intercepted MPI event (the PMPI path). When
// Dynais completes an iteration and at least MinWindowSec elapsed since
// the last signature, a new signature is computed and processed.
func (l *Library) OnMPICall(ev uint32, now float64) error {
	sts := l.dyn.Push(ev)
	switch sts[0] {
	case dynais.NewIteration:
		l.iterations++
		if now-l.lastSigAt >= l.cfg.MinWindowSec {
			return l.computeSignature(now, false)
		}
	case dynais.EndLoop:
		// Structure lost: next signature will be time-guided until a
		// new loop locks.
	}
	return nil
}

// OnTick drives time-guided mode for applications without detected MPI
// structure. It is a no-op while Dynais is locked.
func (l *Library) OnTick(now float64) error {
	if l.dyn.Locked(0) {
		return nil
	}
	if now-l.lastSigAt >= l.cfg.MinWindowSec {
		return l.computeSignature(now, true)
	}
	return nil
}

// computeSignature builds the window signature and runs the Code 1
// state machine.
func (l *Library) computeSignature(now float64, timeGuided bool) error {
	cur, err := l.ctl.Counters()
	if err != nil {
		return err
	}
	cur.TimeSec = now
	cur.Iterations = l.iterations
	if !l.haveLast {
		l.last, l.haveLast = cur, true
		l.lastSigAt = now
		return nil
	}
	sig, err := metrics.Compute(l.last, cur)
	if err != nil {
		// Counter anomalies (e.g. an energy reading not yet published)
		// skip this window rather than failing the application.
		l.last = cur
		l.lastSigAt = now
		return nil
	}
	l.last = cur
	l.lastSigAt = now
	l.sigCount++
	return l.newSignature(sig, now, timeGuided)
}

// newSignature is the paper's state_new_signature.
func (l *Library) newSignature(sig metrics.Signature, now float64, timeGuided bool) error {
	in, err := l.inputs(sig, timeGuided)
	if err != nil {
		return err
	}
	ev := Event{TimeSec: now, Sig: sig, State: l.state}

	switch l.state {
	case NodePolicy:
		nf, pst, err := l.cfg.Policy.Apply(in)
		if err != nil {
			return fmt.Errorf("earl: policy apply: %w", err)
		}
		if err := l.applyFreqs(nf); err != nil {
			return err
		}
		ev.PolicyState, ev.Freqs, ev.Applied = pst, nf, true
		if pr, ok := l.cfg.Policy.(policy.Predictor); ok {
			ev.Pred, ev.HavePred = pr.LastPrediction()
		}
		if pst == policy.Ready {
			l.state = ValidatePolicy
			l.haveStable = false
		}

	case ValidatePolicy:
		ok := l.cfg.Policy.Validate(in)
		ev.Validated = ok
		if !ok {
			// set_def: restore defaults and re-run the policy.
			def := l.cfg.Policy.Default()
			l.cfg.Policy.Reset()
			if err := l.applyFreqs(def); err != nil {
				return err
			}
			ev.Freqs, ev.Applied = def, true
			l.state = NodePolicy
			l.haveStable = false
			break
		}
		if !l.haveStable {
			l.stable, l.haveStable = sig, true
			break
		}
		if metrics.Changed(l.stable, sig, l.cfg.SigChangeTh) {
			ev.SigChange = true
			def := l.cfg.Policy.Default()
			l.cfg.Policy.Reset()
			if err := l.applyFreqs(def); err != nil {
				return err
			}
			ev.Freqs, ev.Applied = def, true
			l.state = NodePolicy
			l.haveStable = false
		}
	}

	l.events = append(l.events, ev)
	return nil
}

// inputs assembles the policy inputs from the node state.
func (l *Library) inputs(sig metrics.Signature, timeGuided bool) (policy.Inputs, error) {
	ps, err := l.ctl.CurrentPstate()
	if err != nil {
		return policy.Inputs{}, err
	}
	unc, err := l.ctl.CurrentUncoreRatio()
	if err != nil {
		return policy.Inputs{}, err
	}
	return policy.Inputs{
		Sig:                sig,
		CurrentPstate:      ps,
		CurrentUncoreRatio: unc,
		TimeGuided:         timeGuided,
	}, nil
}

// applyFreqs actuates a policy frequency selection.
func (l *Library) applyFreqs(nf policy.NodeFreqs) error {
	if err := l.ctl.SetCPUPstate(nf.CPUPstate); err != nil {
		return err
	}
	if nf.SetIMC {
		if err := l.ctl.SetUncoreLimits(nf.IMCMinRatio, nf.IMCMaxRatio); err != nil {
			return err
		}
	}
	return nil
}

// State returns the current runtime state.
func (l *Library) State() State { return l.state }

// Iterations returns the Dynais-detected iteration count.
func (l *Library) Iterations() int { return l.iterations }

// Signatures returns how many signatures have been processed.
func (l *Library) Signatures() int { return l.sigCount }

// Events returns the decision trace.
func (l *Library) Events() []Event { return l.events }

// LoopDetected reports whether Dynais currently has a lock.
func (l *Library) LoopDetected() bool { return l.dyn.Locked(0) }

// NestedStructure returns the highest locked Dynais level and its
// period: level 0 is the innermost MPI loop; higher levels describe
// outer (time-step) structure. It returns (-1, 0) when nothing is
// locked.
func (l *Library) NestedStructure() (level, period int) {
	return l.dyn.TopLocked()
}
