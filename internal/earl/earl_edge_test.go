package earl

import (
	"errors"
	"testing"

	"goear/internal/metrics"
	"goear/internal/policy"
)

// stalledEnergyCtl publishes no energy until told to, reproducing the
// Node Manager's 1 s quantisation racing the first signature window.
type stalledEnergyCtl struct {
	fakeCtl
	publishEnergy bool
}

func (f *stalledEnergyCtl) Counters() (metrics.Sample, error) {
	s, err := f.fakeCtl.Counters()
	if err != nil {
		return s, err
	}
	if !f.publishEnergy {
		s.EnergyJ = 0
	}
	return s, nil
}

func TestWindowSkippedOnStalledEnergyCounter(t *testing.T) {
	// With a stalled DC energy counter the first window has zero
	// energy; EARL must compute a zero-power signature (or skip), not
	// fail, and proceed normally once the counter moves.
	ctl := &stalledEnergyCtl{fakeCtl: *newFakeCtl()}
	sp := &scriptedPolicy{applies: []struct {
		nf policy.NodeFreqs
		st policy.State
	}{{policy.NodeFreqs{CPUPstate: 1}, policy.Ready}}, validateOK: true}
	l, err := New(Config{Policy: sp}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		for _, ev := range []uint32{1, 2} {
			ctl.now += 0.5
			if err := l.OnMPICall(ev, ctl.now); err != nil {
				t.Fatalf("stalled counter broke EARL: %v", err)
			}
		}
	}
	ctl.publishEnergy = true
	for i := 0; i < 24; i++ {
		for _, ev := range []uint32{1, 2} {
			ctl.now += 0.5
			if err := l.OnMPICall(ev, ctl.now); err != nil {
				t.Fatal(err)
			}
		}
	}
	if sp.applyCount == 0 {
		t.Error("policy never ran after the counter recovered")
	}
}

// erroringCtl fails counter reads on demand.
type erroringCtl struct {
	fakeCtl
	failCounters bool
}

func (f *erroringCtl) Counters() (metrics.Sample, error) {
	if f.failCounters {
		return metrics.Sample{}, errors.New("PMU read failure")
	}
	return f.fakeCtl.Counters()
}

func TestCounterReadErrorsPropagate(t *testing.T) {
	ctl := &erroringCtl{fakeCtl: *newFakeCtl(), failCounters: true}
	sp := &scriptedPolicy{applies: []struct {
		nf policy.NodeFreqs
		st policy.State
	}{{policy.NodeFreqs{CPUPstate: 1}, policy.Ready}}, validateOK: true}
	l, err := New(Config{Policy: sp}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err == nil {
		t.Error("Start must surface counter failures")
	}
}

func TestLoopBreakFallsBackToTimeGuided(t *testing.T) {
	ctl := newFakeCtl()
	sp := &scriptedPolicy{applies: []struct {
		nf policy.NodeFreqs
		st policy.State
	}{{policy.NodeFreqs{CPUPstate: 1}, policy.Ready}}, validateOK: true}
	l, err := New(Config{Policy: sp}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	// Lock onto a loop.
	runIterations(t, l, ctl, []uint32{1, 2, 3}, 20, 1.0)
	if !l.LoopDetected() {
		t.Fatal("loop not detected")
	}
	// The application leaves the loop (unique events from here on).
	for i := 0; i < 5; i++ {
		ctl.now += 0.5
		if err := l.OnMPICall(uint32(1000+i), ctl.now); err != nil {
			t.Fatal(err)
		}
	}
	if l.LoopDetected() {
		t.Fatal("lock survived the loop break")
	}
	// Time-guided ticks now produce signatures again.
	sigs := l.Signatures()
	for i := 0; i < 15; i++ {
		ctl.now += 1.0
		if err := l.OnTick(ctl.now); err != nil {
			t.Fatal(err)
		}
	}
	if l.Signatures() <= sigs {
		t.Error("no time-guided signatures after loop break")
	}
}

func TestMonitoringPolicyFullPath(t *testing.T) {
	// The monitoring policy through the real registry: EARL observes,
	// validates forever, never changes frequencies.
	pol, err := policy.New(policy.Monitoring, policy.Config{
		Model:          nil,
		UncoreMinRatio: 12,
		UncoreMaxRatio: 24,
	}.Defaults())
	if err == nil {
		// Monitoring needs no model, but Config.Validate requires one;
		// EARL integrations construct it with the platform model. Here
		// we just assert the registry path errors cleanly without one.
		_ = pol
		t.Fatal("expected error constructing monitoring without model")
	}
}

func TestNestedStructureReported(t *testing.T) {
	ctl := newFakeCtl()
	sp := &scriptedPolicy{applies: []struct {
		nf policy.NodeFreqs
		st policy.State
	}{{policy.NodeFreqs{CPUPstate: 1}, policy.Ready}}, validateOK: true}
	l, err := New(Config{Policy: sp}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	if lvl, _ := l.NestedStructure(); lvl != -1 {
		t.Errorf("nested structure before any events: level %d", lvl)
	}
	runIterations(t, l, ctl, []uint32{1, 2, 3, 4}, 30, 1.0)
	lvl, period := l.NestedStructure()
	// A homogeneous outer body locks level 1 with period 1.
	if lvl != 1 || period != 1 {
		t.Errorf("NestedStructure = (%d,%d), want (1,1)", lvl, period)
	}
}
