package loadgen

import (
	"reflect"
	"testing"

	"goear/internal/workload"
)

// TestRunSimShardInvariance pins the campaign's determinism contract:
// scaling the node count and varying shard/worker counts never changes
// the result bytes.
func TestRunSimShardInvariance(t *testing.T) {
	base := SimConfig{Workload: workload.BTMZC, Nodes: 6, Seed: 3}
	ref, err := RunSim(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Nodes) != 6 {
		t.Fatalf("got %d node results, want 6", len(ref.Nodes))
	}
	for _, v := range []SimConfig{
		{Workload: workload.BTMZC, Nodes: 6, Seed: 3, Shards: 3},
		{Workload: workload.BTMZC, Nodes: 6, Seed: 3, Workers: 4, Shards: 2},
	} {
		got, err := RunSim(v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("config %+v: result differs from reference", v)
		}
	}
}

// TestRunSimExactTracksMacro checks the -exact opt-out stays within the
// macro-step tolerance and that a policy campaign trains its model.
func TestRunSimExactTracksMacro(t *testing.T) {
	cfg := SimConfig{Workload: workload.BTMZC, Nodes: 2, Seed: 5, Policy: "min_energy_eufs"}
	fast, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Exact = true
	exact, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := (fast.EnergyJ - exact.EnergyJ) / exact.EnergyJ; d > 1e-3 || d < -1e-3 {
		t.Errorf("macro energy %g vs exact %g (rel %g)", fast.EnergyJ, exact.EnergyJ, d)
	}
	if d := (fast.TimeSec - exact.TimeSec) / exact.TimeSec; d > 1e-3 || d < -1e-3 {
		t.Errorf("macro time %g vs exact %g (rel %g)", fast.TimeSec, exact.TimeSec, d)
	}
}

func TestRunSimUnknownWorkload(t *testing.T) {
	if _, err := RunSim(SimConfig{Workload: "no-such-kernel"}); err == nil {
		t.Error("expected error for unknown workload")
	}
}
