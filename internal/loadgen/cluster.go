// Package loadgen drives synthetic EARDBD traffic at cluster scale:
// an in-process shard fleet with kill/restart fault injection, a
// generator that pushes tens of thousands of simulated node reporters
// through the real wire protocol (real clients, real batching, real
// spill journals), and a canonical federation snapshot for
// byte-identity checks. It is the load half of the federation test
// battery and the engine behind cmd/earload.
package loadgen

import (
	"fmt"
	"net"
	"sync"

	"goear/internal/accounting"
	"goear/internal/eard"
	"goear/internal/eardbd"
	"goear/internal/eardbd/fed"
	"goear/internal/eardbd/ring"
	"goear/internal/telemetry"
	"goear/internal/telemetry/trace"
	"goear/internal/wire"
)

// Cluster is an in-process shard fleet: one eardbd.Server per shard,
// addressed over net.Pipe, with node→shard placement on a consistent
// hash ring. Kill severs a shard's connections and refuses new dials;
// Restart brings up a fresh Server over the shard's surviving DB —
// the same state a daemon restart leaves on disk — so clients
// exercise the spill/replay/dedup paths exactly as against a real
// crashed daemon.
type Cluster struct {
	cfg   eardbd.Config
	ring  *ring.Ring
	names []string

	mu     sync.Mutex
	shards map[string]*clusterShard
}

type shardState int

const (
	shardUp shardState = iota
	// shardKilling: Kill has started severing the shard but has not
	// yet captured its final state; dials fail, Restart is refused.
	shardKilling
	shardDown
)

type clusterShard struct {
	db    *eard.DB
	srv   *eardbd.Server
	state shardState
	// conns holds the server ends of live pipes so Kill can sever
	// them (ServeConn is invoked directly, bypassing Server's own
	// listener bookkeeping).
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
	// savedPowers and savedAcct carry the last-known node-power view
	// and the job accounting store across a kill/restart, as a
	// persisted daemon snapshot would.
	savedPowers []wire.NodePower
	savedAcct   []accounting.Record
}

// NewCluster builds n shards named shard0..shard<n-1>, each with its
// own DB and server under the given config.
func NewCluster(n int, cfg eardbd.Config) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("loadgen: cluster needs at least one shard, got %d", n)
	}
	c := &Cluster{cfg: cfg, ring: ring.New(0), shards: map[string]*clusterShard{}}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("shard%d", i)
		if err := c.ring.Add(name); err != nil {
			return nil, err
		}
		db := eard.NewDB()
		c.shards[name] = &clusterShard{
			db:    db,
			srv:   eardbd.NewServer(db, cfg),
			conns: map[net.Conn]struct{}{},
		}
		c.names = append(c.names, name)
	}
	return c, nil
}

// Names returns the shard names in creation order.
func (c *Cluster) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Owner returns the shard a node's reports land on.
func (c *Cluster) Owner(node string) string {
	owner, _ := c.ring.Owner(node)
	return owner
}

// Server returns a shard's current server (nil for unknown names).
// After a Restart this is the new instance.
func (c *Cluster) Server(name string) *eardbd.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh := c.shards[name]; sh != nil {
		return sh.srv
	}
	return nil
}

// DialShard opens a connection to one shard, or fails if the shard is
// down.
func (c *Cluster) DialShard(name string) (net.Conn, error) {
	c.mu.Lock()
	sh := c.shards[name]
	if sh == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("loadgen: unknown shard %s", name)
	}
	if sh.state != shardUp {
		c.mu.Unlock()
		return nil, fmt.Errorf("loadgen: shard %s is down", name)
	}
	client, server := net.Pipe()
	srv := sh.srv
	sh.conns[server] = struct{}{}
	sh.wg.Add(1)
	c.mu.Unlock()

	go func() {
		srv.ServeConn(server)
		c.mu.Lock()
		delete(sh.conns, server)
		c.mu.Unlock()
		sh.wg.Done()
	}()
	return client, nil
}

// DialFor returns a dial function routing one node to its ring owner.
func (c *Cluster) DialFor(node string) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		owner, ok := c.ring.Owner(node)
		if !ok {
			return nil, fmt.Errorf("loadgen: empty ring")
		}
		return c.DialShard(owner)
	}
}

// Kill takes a shard down: new dials fail, live connections are
// severed and their handlers drained, and the node-power view is
// captured for the restart (the shard's DB survives, as a daemon's
// disk state would). In-flight batches may have been stored without
// their ack reaching the client; the client's retry is absorbed by
// the server's record-level dedup after Restart.
func (c *Cluster) Kill(name string) error {
	c.mu.Lock()
	sh := c.shards[name]
	if sh == nil {
		c.mu.Unlock()
		return fmt.Errorf("loadgen: unknown shard %s", name)
	}
	if sh.state != shardUp {
		c.mu.Unlock()
		return fmt.Errorf("loadgen: shard %s already down", name)
	}
	sh.state = shardKilling
	for conn := range sh.conns {
		_ = conn.Close()
	}
	srv := sh.srv
	c.mu.Unlock()

	sh.wg.Wait()
	if err := srv.Close(); err != nil {
		return err
	}
	c.mu.Lock()
	sh.savedPowers = srv.NodePowersByName()
	sh.savedAcct = srv.Acct().Snapshot()
	sh.state = shardDown
	c.mu.Unlock()
	return nil
}

// Restart brings a killed shard back with a fresh server over its
// surviving DB, restoring the captured node-power view. The new
// server's batch-ID window starts empty, so redelivered batches are
// deduplicated record-by-record against the DB.
func (c *Cluster) Restart(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh := c.shards[name]
	if sh == nil {
		return fmt.Errorf("loadgen: unknown shard %s", name)
	}
	if sh.state != shardDown {
		return fmt.Errorf("loadgen: shard %s is not down", name)
	}
	sh.srv = eardbd.NewServer(sh.db, c.cfg)
	sh.srv.SeedNodePowers(sh.savedPowers)
	sh.srv.SeedAcct(sh.savedAcct)
	sh.savedPowers = nil
	sh.savedAcct = nil
	sh.state = shardUp
	return nil
}

// Root builds a federation root over the cluster's shards, sharing
// the shards' frame-payload cap so large record dumps survive the
// merge queries, and the shards' trace buffer so a root query and the
// shard queries it fans out render as one connected tree.
func (c *Cluster) Root() (*fed.Root, error) {
	cfg := fed.Config{MaxFramePayload: c.cfg.MaxFramePayload, Telemetry: c.cfg.Telemetry, Trace: c.cfg.Trace}
	for _, name := range c.names {
		name := name
		cfg.Shards = append(cfg.Shards, fed.Shard{
			Name: name,
			Dial: func() (net.Conn, error) { return c.DialShard(name) },
		})
	}
	return fed.NewRoot(cfg)
}

// Close shuts every live shard down.
func (c *Cluster) Close() error {
	var firstErr error
	for _, name := range c.names {
		c.mu.Lock()
		sh := c.shards[name]
		up := sh.state == shardUp
		c.mu.Unlock()
		if !up {
			continue
		}
		if err := c.Kill(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Endpoints routes nodes to external shard daemons (real listeners
// reached through an injected dialer) with the same ring placement an
// in-process Cluster uses. It backs earload's -addrs mode, where the
// shards are separately launched eardbd processes.
type Endpoints struct {
	ring  *ring.Ring
	addrs []string
	dial  func(addr string) (net.Conn, error)
	// MaxFramePayload, when positive, raises the root's frame cap to
	// match the external daemons' -max-frame setting.
	MaxFramePayload int
	// Telemetry, when set, instruments roots built by Root() — the
	// fan-out and snapshot-cache families an earload -metrics dump
	// includes.
	Telemetry *telemetry.Set
	// Trace, when set, records roots built by Root() into the shared
	// span buffer.
	Trace *trace.Buffer
}

// NewEndpoints builds a ring over the given shard addresses.
func NewEndpoints(addrs []string, dial func(addr string) (net.Conn, error)) (*Endpoints, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("loadgen: no shard endpoints")
	}
	if dial == nil {
		return nil, fmt.Errorf("loadgen: endpoints need a dialer")
	}
	rg := ring.New(0)
	for _, a := range addrs {
		if err := rg.Add(a); err != nil {
			return nil, err
		}
	}
	return &Endpoints{ring: rg, addrs: append([]string(nil), addrs...), dial: dial}, nil
}

// DialFor returns a dial function routing one node to its ring owner.
func (e *Endpoints) DialFor(node string) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		owner, ok := e.ring.Owner(node)
		if !ok {
			return nil, fmt.Errorf("loadgen: empty ring")
		}
		return e.dial(owner)
	}
}

// Root builds a federation root over the external shards, named by
// address.
func (e *Endpoints) Root() (*fed.Root, error) {
	cfg := fed.Config{MaxFramePayload: e.MaxFramePayload, Telemetry: e.Telemetry, Trace: e.Trace}
	for _, addr := range e.addrs {
		addr := addr
		cfg.Shards = append(cfg.Shards, fed.Shard{
			Name: addr,
			Dial: func() (net.Conn, error) { return e.dial(addr) },
		})
	}
	return fed.NewRoot(cfg)
}
