package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"

	"goear/internal/accounting"
	"goear/internal/eard"
	"goear/internal/eardbd"
	"goear/internal/par"
	"goear/internal/telemetry"
	"goear/internal/telemetry/trace"
)

// Config parameterises a load run.
type Config struct {
	// Nodes is how many simulated node reporters to drive.
	Nodes int
	// RecordsPerNode is how many job records each node reports
	// (default 10), spread over jobs job0..job2 as in the canonical
	// closed-loop workload.
	RecordsPerNode int
	// AcctPerNode is how many per-job accounting windows each node
	// attributes and reports (default 0: no accounting traffic). Each
	// window hosts one to three tenants, so the record count per node
	// is larger; like Records, the content depends only on (Seed, node
	// index), never on placement.
	AcctPerNode int
	// BatchRecords is the client batch-size trigger (default 4).
	BatchRecords int
	// Workers bounds how many node reporters run concurrently
	// (default 8).
	Workers int
	// Seed derives every node's record stream and retry jitter;
	// record content depends only on (Seed, node index), never on
	// placement, so runs over different shard counts generate
	// byte-identical data.
	Seed int64
	// MaxAttempts is the per-batch delivery attempt bound passed to
	// the clients (0 = client default).
	MaxAttempts int
	// NodeName, when set, overrides the node naming scheme (default
	// NodeName). The closed-loop battery feeds its historical "n%02d"
	// names through this hook so the federated transcripts stay
	// comparable with the single-daemon golden.
	NodeName func(i int) string
	// Telemetry, when set, exposes the generator's progress as
	// goear_loadgen_* instruments. Falls back to the process-global
	// set; nil when that is disabled too, making every instrument a
	// no-op.
	Telemetry *telemetry.Set
	// Trace, when set, is handed to every node client so each batch
	// renders its span tree into the shared buffer. Batch traces are
	// keyed by batch ID, so the buffer's canonical export is identical
	// whatever Workers is set to.
	Trace *trace.Buffer
	// RTTNow, when set, enables client-observed batch RTT measurement:
	// every acked batch's write-to-ack round trip is collected, and
	// RTTPercentiles summarises them. Leave nil in deterministic runs.
	RTTNow func() float64
}

func (c Config) withDefaults() Config {
	if c.RecordsPerNode == 0 {
		c.RecordsPerNode = 10
	}
	if c.BatchRecords == 0 {
		c.BatchRecords = 4
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("loadgen: need at least one node, got %d", c.Nodes)
	case c.RecordsPerNode < 1:
		return fmt.Errorf("loadgen: need at least one record per node")
	case c.BatchRecords < 1:
		return fmt.Errorf("loadgen: batch size must be positive")
	case c.Workers < 1:
		return fmt.Errorf("loadgen: worker count must be positive")
	}
	return nil
}

// Hooks lets a caller interleave fault injection with the load.
type Hooks struct {
	// AfterNode runs after node i's reporter has closed (on that
	// node's worker goroutine). Kill/Restart a cluster shard here to
	// fault mid-load.
	AfterNode func(i int)
}

// Result summarises a load run.
type Result struct {
	Nodes           int                 `json:"nodes"`
	RecordsEnqueued int                 `json:"records_enqueued"`
	NodeErrors      int                 `json:"node_errors"`
	Client          eardbd.ClientStats  `json:"client"`
	BacklogBatches  int                 `json:"backlog_batches"`
}

// Generator drives simulated node reporters through real EARDBD
// clients. Every node gets its own client, memory journal, fake clock
// and seeded jitter stream: unreachable shards cost spills and
// replays, never wall-clock sleeps, so a 10k-node run with faults
// finishes in seconds and stays deterministic in content.
type Generator struct {
	cfg Config
	tel genTel

	mu       sync.Mutex
	journals map[string]*eardbd.Journal
	sum      eardbd.ClientStats
	enqueued int
	errs     int
	ran      int
	rtts     []float64 // client-observed batch RTTs, seconds
}

// recordRTT collects one acked batch's observed round trip.
func (g *Generator) recordRTT(sec float64) {
	g.mu.Lock()
	g.rtts = append(g.rtts, sec)
	g.mu.Unlock()
}

// RTTPercentiles summarises the collected batch round trips with
// nearest-rank percentiles: count, p50, p95, p99 in seconds. All
// zeros when RTT measurement was off or nothing was acked.
func (g *Generator) RTTPercentiles() (n int, p50, p95, p99 float64) {
	g.mu.Lock()
	samples := append([]float64(nil), g.rtts...)
	g.mu.Unlock()
	if len(samples) == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(samples)
	rank := func(q float64) float64 {
		i := int(q*float64(len(samples))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	return len(samples), rank(0.50), rank(0.95), rank(0.99)
}

// New builds a generator.
func New(cfg Config) (*Generator, error) {
	if err := cfg.withDefaults().Validate(); err != nil {
		return nil, err
	}
	return &Generator{
		cfg:      cfg.withDefaults(),
		tel:      newGenTel(cfg.Telemetry),
		journals: map[string]*eardbd.Journal{},
	}, nil
}

// NodeName names node i; placement and record content key off it.
func NodeName(i int) string { return fmt.Sprintf("node%05d", i) }

func (g *Generator) nodeName(i int) string {
	if g.cfg.NodeName != nil {
		return g.cfg.NodeName(i)
	}
	return NodeName(i)
}

// Records generates node i's deterministic record stream: the
// canonical closed-loop workload shape (three jobs, per-node power in
// [250, 290) W) scaled to RecordsPerNode.
func (g *Generator) Records(i int) []eard.JobRecord {
	node := g.nodeName(i)
	rng := rand.New(rand.NewSource(g.cfg.Seed + int64(1000+i)))
	out := make([]eard.JobRecord, g.cfg.RecordsPerNode)
	for j := range out {
		power := 250 + 40*rng.Float64()
		out[j] = eard.JobRecord{
			JobID: fmt.Sprintf("job%d", j%3), StepID: fmt.Sprint(j / 3), Node: node,
			App: "BT-MZ.C", Policy: "min_energy",
			TimeSec: 120, EnergyJ: power * 120, AvgPower: power,
			AvgCPU: 2.1, AvgIMC: 2.4,
		}
	}
	return out
}

// acctUsers are the tenants accounting windows rotate through — the
// multi-tenant axis the query tier filters on.
var acctUsers = [...]string{"alice", "bob", "carol"}

// AcctRecords generates node i's deterministic accounting stream:
// AcctPerNode phase windows, each with one to three tenant jobs whose
// usage counters ratio-split the window's measured energy through the
// real attribution engine. Content depends only on (Seed, node index).
func (g *Generator) AcctRecords(i int) ([]accounting.Record, error) {
	if g.cfg.AcctPerNode <= 0 {
		return nil, nil
	}
	node := g.nodeName(i)
	rng := rand.New(rand.NewSource(g.cfg.Seed + int64(5000000+i)))
	var out []accounting.Record
	for w := 0; w < g.cfg.AcctPerNode; w++ {
		pkg := 180 + 60*rng.Float64() // W-ish rates over a 120 s window
		dram := 25 + 10*rng.Float64()
		uncore := 30 + 15*rng.Float64()
		window := accounting.Window{
			Node:     node,
			Phase:    w,
			StartSec: 120 * float64(w),
			EndSec:   120 * float64(w+1),
		}
		energy := accounting.Energy{
			PkgJ:    pkg * 120,
			DramJ:   dram * 120,
			UncoreJ: uncore * 120,
			NodeJ:   (pkg + dram + 45) * 120,
		}
		nTenants := 1 + (i+w)%len(acctUsers)
		tenants := make([]accounting.Tenant, nTenants)
		for t := range tenants {
			tenants[t] = accounting.Tenant{
				Meta: accounting.Meta{
					JobID:  fmt.Sprintf("job%d", (w+t)%3),
					StepID: fmt.Sprint(t),
					User:   acctUsers[t],
					Policy: "min_energy",
				},
				Usage: accounting.Usage{
					Instr:     (1 + rng.Float64()) * 1e12,
					Cycles:    (1 + rng.Float64()) * 1e12,
					DRAMBytes: (1 + rng.Float64()) * 1e11,
				},
				Rates: accounting.Rates{AvgCPUGHz: 2.1, AvgIMCGHz: 2.4},
			}
		}
		recs, err := accounting.Attribute(window, energy, tenants)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// Run drives all nodes through the given per-node dialer under the
// worker pool. Unreachable shards are an expected outcome, not an
// error: affected batches spill to the node's journal and stay
// claimable by Drain. The returned error covers only harness
// failures (bad config, journal I/O), never delivery faults.
func (g *Generator) Run(dial func(node string) func() (net.Conn, error), hooks Hooks) (Result, error) {
	if dial == nil {
		return Result{}, fmt.Errorf("loadgen: Run needs a dialer")
	}
	err := par.ForEach(g.cfg.Workers, g.cfg.Nodes, func(i int) error {
		if err := g.runNode(i, dial); err != nil {
			return err
		}
		if hooks.AfterNode != nil {
			hooks.AfterNode(i)
		}
		return nil
	})
	g.tel.backlog.Set(float64(g.backlogLocked()))
	return g.result(), err
}

func (g *Generator) runNode(i int, dial func(node string) func() (net.Conn, error)) error {
	node := g.nodeName(i)
	journal, err := eardbd.OpenJournal("") // memory-only
	if err != nil {
		return err
	}
	g.mu.Lock()
	g.journals[node] = journal
	g.mu.Unlock()

	c, err := eardbd.NewClient(eardbd.ClientConfig{
		Node:         node,
		Dial:         dial(node),
		Clock:        eardbd.NewFakeClock(0),
		Jitter:       rand.New(rand.NewSource(g.cfg.Seed ^ int64(7919*i+1))),
		BatchRecords: g.cfg.BatchRecords,
		MaxAttempts:  g.cfg.MaxAttempts,
		Journal:      journal,
		Telemetry:    g.cfg.Telemetry,
		Trace:        g.cfg.Trace,
		RTTNow:       g.cfg.RTTNow,
		OnBatchRTT:   g.recordRTT,
	})
	if err != nil {
		return err
	}
	var nodeErr error
	enq := 0
	for _, r := range g.Records(i) {
		err := c.Enqueue(r)
		switch {
		case err == nil, errors.Is(err, eardbd.ErrUnreachable):
			// Unreachable is survivable: the flush journaled the
			// batch for a later replay.
			enq++
		default:
			nodeErr = err
		}
	}
	acct, err := g.AcctRecords(i)
	if err != nil && nodeErr == nil {
		nodeErr = err
	}
	for _, r := range acct {
		err := c.EnqueueAcct(r)
		switch {
		case err == nil, errors.Is(err, eardbd.ErrUnreachable):
			enq++
		default:
			nodeErr = err
		}
	}
	if err := c.Close(); err != nil && !errors.Is(err, eardbd.ErrUnreachable) && nodeErr == nil {
		nodeErr = err
	}

	g.mu.Lock()
	g.ran++
	g.enqueued += enq
	addClientStats(&g.sum, c.Stats())
	if journal.Len() == 0 {
		delete(g.journals, node)
	}
	if nodeErr != nil {
		g.errs++
	}
	g.mu.Unlock()
	g.tel.nodes.Inc()
	g.tel.records.Add(uint64(enq))
	if nodeErr != nil {
		g.tel.nodeErrors.Inc()
	}
	return nil
}

// Drain replays the spilled backlog: each pass rebuilds a client per
// backlogged node (resuming its batch sequence from the journal, as a
// restarted reporter process would) and flushes until the journal
// empties or maxPasses runs out. It returns the remaining backlog in
// batches.
func (g *Generator) Drain(dial func(node string) func() (net.Conn, error), maxPasses int) (int, error) {
	for pass := 0; pass < maxPasses; pass++ {
		g.mu.Lock()
		nodes := make([]string, 0, len(g.journals))
		for node := range g.journals {
			nodes = append(nodes, node)
		}
		g.mu.Unlock()
		if len(nodes) == 0 {
			break
		}
		sort.Strings(nodes)
		g.tel.drainPasses.Inc()
		progress := false
		for _, node := range nodes {
			g.mu.Lock()
			journal := g.journals[node]
			g.mu.Unlock()
			if journal == nil {
				continue
			}
			before := journal.Len()
			c, err := eardbd.NewClient(eardbd.ClientConfig{
				Node:         node,
				Dial:         dial(node),
				Clock:        eardbd.NewFakeClock(0),
				Jitter:       rand.New(rand.NewSource(g.cfg.Seed ^ hashNode(node))),
				BatchRecords: g.cfg.BatchRecords,
				MaxAttempts:  g.cfg.MaxAttempts,
				Journal:      journal,
				Telemetry:    g.cfg.Telemetry,
				Trace:        g.cfg.Trace,
				RTTNow:       g.cfg.RTTNow,
				OnBatchRTT:   g.recordRTT,
			})
			if err != nil {
				return g.Backlog(), err
			}
			ferr := c.Flush()
			cerr := c.Close()
			if ferr != nil && !errors.Is(ferr, eardbd.ErrUnreachable) {
				return g.Backlog(), ferr
			}
			if cerr != nil && !errors.Is(cerr, eardbd.ErrUnreachable) {
				return g.Backlog(), cerr
			}
			g.mu.Lock()
			addClientStats(&g.sum, c.Stats())
			if journal.Len() == 0 {
				delete(g.journals, node)
			}
			if journal.Len() < before {
				progress = true
			}
			g.mu.Unlock()
		}
		g.tel.backlog.Set(float64(g.Backlog()))
		if !progress {
			break
		}
	}
	return g.Backlog(), nil
}

// Backlog returns the spilled batches still awaiting drain.
func (g *Generator) Backlog() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.backlogLocked()
}

func (g *Generator) backlogLocked() int {
	total := 0
	for _, j := range g.journals {
		total += j.Len()
	}
	return total
}

// Stats returns the summed client counters so far.
func (g *Generator) Stats() eardbd.ClientStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sum
}

func (g *Generator) result() Result {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Result{
		Nodes:           g.ran,
		RecordsEnqueued: g.enqueued,
		NodeErrors:      g.errs,
		Client:          g.sum,
		BacklogBatches:  g.backlogLocked(),
	}
}

// addClientStats accumulates b into a, field by field.
func addClientStats(a *eardbd.ClientStats, b eardbd.ClientStats) {
	a.Enqueued += b.Enqueued
	a.Flushes += b.Flushes
	a.BatchesSent += b.BatchesSent
	a.RecordsSent += b.RecordsSent
	a.Retries += b.Retries
	a.Redials += b.Redials
	a.BatchesSpilled += b.BatchesSpilled
	a.RecordsSpilled += b.RecordsSpilled
	a.BatchesReplayed += b.BatchesReplayed
	a.BatchesRejected += b.BatchesRejected
	a.RecordsDropped += b.RecordsDropped
}

// hashNode derives a stable per-node jitter seed for drain clients
// (FNV-1a over the name).
func hashNode(node string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= 1099511628211
	}
	return int64(h)
}
