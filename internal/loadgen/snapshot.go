package loadgen

import (
	"encoding/json"

	"goear/internal/accounting"
	"goear/internal/eard"
	"goear/internal/eardbd"
	"goear/internal/eardbd/fed"
	"goear/internal/wire"
)

// snapshot is the canonical federation state dump: the aggregate, the
// merged per-node power view, every job summary and every per-job
// accounting record, in the fixed field and element order the
// byte-identity tests compare.
type snapshot struct {
	Aggregate  eardbd.Aggregate    `json:"aggregate"`
	NodePowers []wire.NodePower    `json:"node_powers"`
	Jobs       []eard.JobSummary   `json:"jobs"`
	Acct       []accounting.Record `json:"acct"`
}

// Snapshot renders the root's merged state as canonical JSON. Two
// runs over the same record set produce byte-identical snapshots
// whatever the shard count or fault history, which is the federation
// tier's core correctness contract.
func Snapshot(root *fed.Root) ([]byte, error) {
	agg, err := root.Aggregate()
	if err != nil {
		return nil, err
	}
	nps, err := root.MergedNodePowers()
	if err != nil {
		return nil, err
	}
	jobs, err := root.JobSummaries()
	if err != nil {
		return nil, err
	}
	acct, err := root.AcctRecords()
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(snapshot{Aggregate: agg, NodePowers: nps, Jobs: jobs, Acct: acct}, "", "  ")
}
