package loadgen

import (
	"fmt"

	"goear/internal/eargm"
	"goear/internal/model"
	"goear/internal/sim"
	"goear/internal/workload"
)

// SimConfig describes a coordinated cluster simulation campaign: the
// compute-side counterpart of the reporting-tier burst. The campaign
// runs N nodes of one catalogue workload in lock-step under an EARGM
// power budget, on the simulator's batch stepping kernels.
type SimConfig struct {
	// Workload is the catalogue workload name (default BT-MZ.C).
	Workload string
	// Nodes overrides the workload's catalogue node count when > 0,
	// scaling the campaign to cluster size.
	Nodes int
	// Policy is a registered EARL policy name ("" / "none" runs the
	// nominal-frequency baseline). The platform's energy model is
	// trained on demand when a policy is set.
	Policy string
	// Seed drives all measurement noise (results are pure functions of
	// the seed and the configuration).
	Seed int64
	// Workers bounds the stepping fan-out; Shards the batch kernel
	// count (0 derives it from Workers). Results are byte-identical at
	// any setting of either.
	Workers int
	Shards  int
	// Exact disables the macro-step fast-forward (several times
	// slower; results agree to ~1e-3 relative).
	Exact bool
	// BudgetW is the site power budget EARGM enforces; 0 runs
	// uncapped (a budget no cluster reaches).
	BudgetW float64
	// MaxCapPstate is the deepest pstate ceiling the manager may
	// impose (default 8); IntervalSec its control period (default 5).
	MaxCapPstate int
	IntervalSec  float64
}

// RunSim executes the campaign and returns the cluster result.
func RunSim(cfg SimConfig) (sim.Result, error) {
	name := cfg.Workload
	if name == "" {
		name = workload.BTMZC
	}
	spec, err := workload.Lookup(name)
	if err != nil {
		return sim.Result{}, err
	}
	if cfg.Nodes > 0 {
		spec.Nodes = cfg.Nodes
	}
	cal, err := spec.Calibrate()
	if err != nil {
		return sim.Result{}, err
	}
	opt := sim.Options{
		Policy:    cfg.Policy,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		Shards:    cfg.Shards,
		MacroStep: !cfg.Exact,
	}
	if cfg.Policy != "" && cfg.Policy != "none" {
		m, err := model.TrainForCPU(cal.Platform.Machine, cal.Platform.Power)
		if err != nil {
			return sim.Result{}, fmt.Errorf("loadgen: training model for %s: %w", cal.Platform.Name, err)
		}
		opt.Model = m
	}
	budget := cfg.BudgetW
	if budget <= 0 {
		budget = 1e15 // uncapped: no cluster reaches this
	}
	capP := cfg.MaxCapPstate
	if capP == 0 {
		capP = 8
	}
	gm, err := eargm.New(eargm.Config{
		BudgetW:      budget,
		MaxCapPstate: capP,
		IntervalSec:  cfg.IntervalSec,
	})
	if err != nil {
		return sim.Result{}, err
	}
	return sim.RunCoordinated(cal, opt, gm)
}
