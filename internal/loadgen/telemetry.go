package loadgen

import (
	"goear/internal/telemetry"
)

// Metric names (package-level constants per the goearvet telemetry
// analyzer).
const (
	metricLGNodes       = "goear_loadgen_nodes_total"
	metricLGRecords     = "goear_loadgen_records_total"
	metricLGNodeErrors  = "goear_loadgen_node_errors_total"
	metricLGDrainPasses = "goear_loadgen_drain_passes_total"
	metricLGBacklog     = "goear_loadgen_journal_backlog_batches"
)

// genTel is the generator's pre-resolved instrument bundle; nil
// fields (telemetry absent) make every use a nil-receiver no-op.
type genTel struct {
	nodes       *telemetry.Counter
	records     *telemetry.Counter
	nodeErrors  *telemetry.Counter
	drainPasses *telemetry.Counter
	backlog     *telemetry.Gauge
}

func newGenTel(s *telemetry.Set) genTel {
	if s == nil {
		s = telemetry.Default()
	}
	r := s.Reg()
	return genTel{
		nodes:       r.Counter(metricLGNodes, "simulated node reporters completed"),
		records:     r.Counter(metricLGRecords, "job records enqueued by the generator"),
		nodeErrors:  r.Counter(metricLGNodeErrors, "node reporters that hit an unexpected reporting error"),
		drainPasses: r.Counter(metricLGDrainPasses, "journal drain passes run"),
		backlog:     r.Gauge(metricLGBacklog, "spilled batches awaiting drain"),
	}
}
