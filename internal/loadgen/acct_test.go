package loadgen

import (
	"encoding/json"
	"testing"

	"goear/internal/accounting"
)

// TestAcctByteIdenticalAcrossShardCounts is the closed-loop golden of
// the accounting tier: the same job traffic pushed through 1, 2 and 4
// shards — real clients, real batching, record dedup — must merge to
// byte-identical record dumps and byte-identical query pages at the
// federation root. The root's page must also match what the shard
// daemon itself serves, so clients cannot tell a root from a daemon.
func TestAcctByteIdenticalAcrossShardCounts(t *testing.T) {
	const nodes = 30
	var refDump, refPage []byte
	for _, shards := range []int{1, 2, 4} {
		cluster, _, res := runLoad(t, nodes, shards, Config{Workers: 8, AcctPerNode: 3}, Hooks{})
		if res.BacklogBatches != 0 || res.NodeErrors != 0 {
			t.Fatalf("shards=%d: result = %+v", shards, res)
		}
		root, err := cluster.Root()
		if err != nil {
			t.Fatal(err)
		}
		recs, err := root.AcctRecords()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			t.Fatalf("shards=%d: no accounting records surfaced", shards)
		}
		dump, err := json.Marshal(recs)
		if err != nil {
			t.Fatal(err)
		}
		q := accounting.Query{User: "alice", Limit: 7}
		page, err := root.AcctQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		pageBlob, err := json.Marshal(page)
		if err != nil {
			t.Fatal(err)
		}
		if shards == 1 {
			// Through the root and straight off the daemon must be the
			// same bytes: the serving tier stacks transparently.
			direct, err := cluster.Server("shard0").Acct().Query(q)
			if err != nil {
				t.Fatal(err)
			}
			directBlob, err := json.Marshal(direct)
			if err != nil {
				t.Fatal(err)
			}
			if string(directBlob) != string(pageBlob) {
				t.Fatal("root page differs from the daemon's own page")
			}
			refDump, refPage = dump, pageBlob
			continue
		}
		if string(dump) != string(refDump) {
			t.Fatalf("shards=%d: merged accounting records differ from single-shard run", shards)
		}
		if string(pageBlob) != string(refPage) {
			t.Fatalf("shards=%d: query page differs from single-shard run", shards)
		}
	}
}

// TestAcctRootCacheHits pins the snapshot cache: with ingest quiet, a
// repeated query is served from the generation-keyed cache and the
// root's stats say so.
func TestAcctRootCacheHits(t *testing.T) {
	cluster, _, res := runLoad(t, 10, 2, Config{Workers: 4, AcctPerNode: 2}, Hooks{})
	if res.NodeErrors != 0 {
		t.Fatalf("result = %+v", res)
	}
	root, err := cluster.Root()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := root.AcctQuery(accounting.Query{Limit: 5}); err != nil {
			t.Fatal(err)
		}
	}
	st := root.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Fatalf("cache stats = %d hits / %d misses, want 2/1", st.CacheHits, st.CacheMisses)
	}
	// The merged view also answers the node-report queries; those ride
	// the same cache.
	if _, err := root.Aggregate(); err != nil {
		t.Fatal(err)
	}
	if st = root.Stats(); st.CacheHits != 3 {
		t.Fatalf("aggregate after acct query missed the cache: %+v", st)
	}
}

// TestAcctGeneratorDeterminism pins the workload itself: two
// generators with the same seed produce identical job records, and
// different worker counts deliver the same store state (the enqueue
// path is per-node ordered).
func TestAcctGeneratorDeterminism(t *testing.T) {
	mk := func(workers int) []byte {
		t.Helper()
		cluster, _, res := runLoad(t, 20, 2, Config{Workers: workers, AcctPerNode: 2}, Hooks{})
		if res.NodeErrors != 0 || res.BacklogBatches != 0 {
			t.Fatalf("result = %+v", res)
		}
		root, err := cluster.Root()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := Snapshot(root)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	if a, b := mk(1), mk(8); string(a) != string(b) {
		t.Fatal("federation snapshot differs between Workers=1 and Workers=8")
	}
}
