package loadgen

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"goear/internal/eardbd"
	"goear/internal/telemetry"
)

func runLoad(t *testing.T, nodes, shards int, cfg Config, hooks Hooks) (*Cluster, *Generator, Result) {
	t.Helper()
	cluster, err := NewCluster(shards, eardbd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nodes = nodes
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(cluster.DialFor, hooks)
	if err != nil {
		t.Fatal(err)
	}
	return cluster, g, res
}

func TestGeneratorDeliversEverything(t *testing.T) {
	const nodes = 50
	cluster, _, res := runLoad(t, nodes, 2, Config{Workers: 4}, Hooks{})
	if res.Nodes != nodes || res.RecordsEnqueued != nodes*10 || res.NodeErrors != 0 || res.BacklogBatches != 0 {
		t.Fatalf("result = %+v", res)
	}
	accepted := 0
	for _, name := range cluster.Names() {
		accepted += cluster.Server(name).Stats().RecordsAccepted
	}
	if accepted != nodes*10 {
		t.Fatalf("shards accepted %d records, want %d", accepted, nodes*10)
	}
	if res.Client.RecordsSent != nodes*10 || res.Client.RecordsDropped != 0 {
		t.Fatalf("client stats = %+v", res.Client)
	}
}

func TestSnapshotByteIdenticalAcrossShardCounts(t *testing.T) {
	const nodes = 40
	var ref []byte
	for _, shards := range []int{1, 2, 4} {
		cluster, _, res := runLoad(t, nodes, shards, Config{Workers: 8}, Hooks{})
		if res.BacklogBatches != 0 || res.NodeErrors != 0 {
			t.Fatalf("shards=%d: result = %+v", shards, res)
		}
		root, err := cluster.Root()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := Snapshot(root)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = blob
			continue
		}
		if string(blob) != string(ref) {
			t.Fatalf("shards=%d: snapshot differs from single-shard run", shards)
		}
	}
}

// TestFaultInjectionReplaysExactlyOnce kills a shard mid-load and
// restarts it later: spilled batches must drain, every record must
// land exactly once, and the final federation snapshot must be
// byte-identical to a no-fault run.
func TestFaultInjectionReplaysExactlyOnce(t *testing.T) {
	const nodes, shards = 60, 3
	// Job accounting records ride the same batches, so the fault pass
	// proves their exactly-once delivery too.
	cfg := Config{Workers: 4, Seed: 7, AcctPerNode: 2}

	clean, _, cleanRes := runLoad(t, nodes, shards, cfg, Hooks{})
	if cleanRes.BacklogBatches != 0 {
		t.Fatalf("clean run left backlog: %+v", cleanRes)
	}
	cleanRoot, err := clean.Root()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Snapshot(cleanRoot)
	if err != nil {
		t.Fatal(err)
	}

	set := telemetry.NewSet()
	cfg.Telemetry = set
	cluster, err := NewCluster(shards, eardbd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{Nodes: nodes, Workers: cfg.Workers, Seed: cfg.Seed, AcctPerNode: cfg.AcctPerNode, Telemetry: set})
	if err != nil {
		t.Fatal(err)
	}
	victim := cluster.Names()[1]
	var done int64
	var killing, killDone, restarted atomic.Bool
	hooks := Hooks{AfterNode: func(i int) {
		n := atomic.AddInt64(&done, 1)
		if n >= 10 && killing.CompareAndSwap(false, true) {
			if err := cluster.Kill(victim); err != nil {
				t.Error(err)
			}
			killDone.Store(true)
		}
		if n >= 40 && killDone.Load() && restarted.CompareAndSwap(false, true) {
			if err := cluster.Restart(victim); err != nil {
				t.Error(err)
			}
		}
	}}
	res, err := g.Run(cluster.DialFor, hooks)
	if err != nil {
		t.Fatal(err)
	}
	if !restarted.Load() {
		if err := cluster.Restart(victim); err != nil {
			t.Fatal(err)
		}
	}
	left, err := g.Drain(cluster.DialFor, 5)
	if err != nil {
		t.Fatal(err)
	}
	if left != 0 {
		t.Fatalf("drain left %d batches journaled", left)
	}
	st := g.Stats()
	if st.BatchesSpilled == 0 {
		t.Fatal("fault injected but nothing spilled; kill timing broken")
	}
	if st.BatchesSpilled != st.BatchesReplayed {
		t.Fatalf("spilled %d batches but replayed %d", st.BatchesSpilled, st.BatchesReplayed)
	}
	if st.RecordsDropped != 0 || res.NodeErrors != 0 {
		t.Fatalf("lost records: stats %+v result %+v", st, res)
	}

	root, err := cluster.Root()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Snapshot(root)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("faulted snapshot differs from no-fault run:\n--- want\n%s\n--- got\n%s", want, got)
	}

	var b strings.Builder
	if err := set.Reg().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, metric := range []string{
		"goear_loadgen_nodes_total " + fmt.Sprint(nodes),
		"goear_loadgen_journal_backlog_batches 0",
		"goear_eardbd_client_batches_spilled_total",
		"goear_eardbd_client_batches_replayed_total",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("telemetry missing %q", metric)
		}
	}
}

func TestClusterFaultAPIErrors(t *testing.T) {
	cluster, err := NewCluster(2, eardbd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Kill("nope"); err == nil {
		t.Error("killed an unknown shard")
	}
	if err := cluster.Restart("shard0"); err == nil {
		t.Error("restarted a live shard")
	}
	if err := cluster.Kill("shard0"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Kill("shard0"); err == nil {
		t.Error("killed a dead shard twice")
	}
	if _, err := cluster.DialShard("shard0"); err == nil {
		t.Error("dialed a dead shard")
	}
	if err := cluster.Restart("shard0"); err != nil {
		t.Fatal(err)
	}
	conn, err := cluster.DialShard("shard0")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := NewCluster(0, eardbd.Config{}); err == nil {
		t.Error("built an empty cluster")
	}
}

func TestEndpointsRouteLikeCluster(t *testing.T) {
	// External mode over fake "addresses" that pipe into in-process
	// servers must place nodes exactly as a Cluster would, because
	// both hash the same member names.
	cluster, err := NewCluster(2, eardbd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	addrs := cluster.Names()
	eps, err := NewEndpoints(addrs, func(addr string) (net.Conn, error) {
		return cluster.DialShard(addr)
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{Nodes: 20, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(eps.DialFor, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BacklogBatches != 0 || res.Client.RecordsSent != 200 {
		t.Fatalf("result = %+v", res)
	}
	root, err := eps.Root()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := root.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Nodes != 20 || agg.Records != 200 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if _, err := NewEndpoints(nil, nil); err == nil {
		t.Error("built endpoints with no addresses")
	}
}

func TestGeneratorValidation(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Nodes: -1},
		{Nodes: 1, RecordsPerNode: -1},
		{Nodes: 1, BatchRecords: -1},
		{Nodes: 1, Workers: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
	g, err := New(Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(nil, Hooks{}); err == nil {
		t.Error("Run accepted a nil dialer")
	}
}
