package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFreqConversions(t *testing.T) {
	f := 2.4 * GHz
	if got := f.GHzF(); got != 2.4 {
		t.Errorf("GHzF = %v, want 2.4", got)
	}
	if got := f.MHzF(); got != 2400 {
		t.Errorf("MHzF = %v, want 2400", got)
	}
}

func TestFreqRatio(t *testing.T) {
	cases := []struct {
		f    Freq
		gran Freq
		want uint64
	}{
		{2.4 * GHz, 100 * MHz, 24},
		{1.2 * GHz, 100 * MHz, 12},
		{2.35 * GHz, 100 * MHz, 24}, // rounds to nearest
		{2.449 * GHz, 100 * MHz, 24},
		{0, 100 * MHz, 0},
		{2.4 * GHz, 0, 0}, // degenerate granularity
	}
	for _, c := range cases {
		if got := c.f.Ratio(c.gran); got != c.want {
			t.Errorf("Ratio(%v, %v) = %d, want %d", c.f, c.gran, got, c.want)
		}
	}
}

func TestFromRatioRoundTrip(t *testing.T) {
	// Any ratio in the plausible uncore range must round-trip exactly
	// through FromRatio/Ratio at 100 MHz granularity.
	f := func(r uint8) bool {
		ratio := uint64(r%64) + 1
		return FromRatio(ratio, 100*MHz).Ratio(100*MHz) == ratio
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseFreq(t *testing.T) {
	cases := []struct {
		in   string
		want Freq
		ok   bool
	}{
		{"2.4GHz", 2.4 * GHz, true},
		{"2.4 GHz", 2.4 * GHz, true},
		{"2400MHz", 2400 * MHz, true},
		{"2400mhz", 2400 * MHz, true},
		{"1200kHz", 1200 * KHz, true},
		{"42Hz", 42 * Hz, true},
		{"2400000000", Freq(2.4e9), true},
		{"", 0, false},
		{"GHz", 0, false},
		{"-1GHz", 0, false},
		{"abcGHz", 0, false},
	}
	for _, c := range cases {
		got, err := ParseFreq(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseFreq(%q) error: %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseFreq(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-6 {
			t.Errorf("ParseFreq(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseFreqFormatRoundTrip(t *testing.T) {
	// String output of whole-100MHz frequencies must parse back to the
	// same value.
	f := func(r uint8) bool {
		ratio := uint64(r%40) + 1
		orig := FromRatio(ratio, 100*MHz)
		parsed, err := ParseFreq(orig.String())
		if err != nil {
			return false
		}
		return math.Abs(float64(parsed-orig)) < 1e3 // within 1 kHz
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreqString(t *testing.T) {
	cases := []struct {
		f    Freq
		want string
	}{
		{2.4 * GHz, "2.4GHz"},
		{2.39 * GHz, "2.39GHz"},
		{100 * MHz, "100MHz"},
		{1.5 * KHz, "1.5kHz"},
		{10 * Hz, "10Hz"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String(%g) = %q, want %q", float64(c.f), got, c.want)
		}
	}
}

func TestEnergyPower(t *testing.T) {
	e := WattSeconds(300, 10)
	if e != 3000 {
		t.Fatalf("WattSeconds = %v, want 3000", e)
	}
	if p := e.Over(10); p != 300 {
		t.Errorf("Over = %v, want 300", p)
	}
	if p := e.Over(0); p != 0 {
		t.Errorf("Over(0) = %v, want 0", p)
	}
	if p := e.Over(-1); p != 0 {
		t.Errorf("Over(-1) = %v, want 0", p)
	}
}

func TestEnergyConservationProperty(t *testing.T) {
	// Splitting an interval in two conserves energy.
	f := func(pw uint16, aFrac uint8) bool {
		p := Power(float64(pw%1000) + 1)
		total := 100.0
		a := total * float64(aFrac) / 255
		e1 := WattSeconds(p, a)
		e2 := WattSeconds(p, total-a)
		whole := WattSeconds(p, total)
		return math.Abs(float64(e1+e2-whole)) < 1e-6*float64(whole)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentChange(t *testing.T) {
	if got := PercentChange(100, 110); got != 10 {
		t.Errorf("PercentChange(100,110) = %v, want 10", got)
	}
	if got := PercentChange(100, 90); got != -10 {
		t.Errorf("PercentChange(100,90) = %v, want -10", got)
	}
	if got := PercentChange(0, 90); got != 0 {
		t.Errorf("PercentChange(0,90) = %v, want 0", got)
	}
}

func TestStringFormats(t *testing.T) {
	if got := Power(332.5).String(); got != "332.5W" {
		t.Errorf("Power.String = %q", got)
	}
	if got := Energy(1234).String(); got != "1234J" {
		t.Errorf("Energy.String = %q", got)
	}
	if got := Energy(48000).String(); got != "48kJ" {
		t.Errorf("Energy(48000).String = %q", got)
	}
	if got := Seconds(1.5).String(); got != "1.5s" {
		t.Errorf("Seconds.String = %q", got)
	}
}
