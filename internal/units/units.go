// Package units defines the physical quantities used throughout goear:
// frequency, power, energy and time intervals, together with parsing and
// formatting helpers.
//
// Frequencies are stored in hertz, powers in watts, energies in joules.
// The types are plain float64 wrappers so that arithmetic stays cheap in
// the simulator hot path while signatures remain self-documenting.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Freq is a frequency in hertz.
type Freq float64

// Common frequency units.
const (
	Hz  Freq = 1
	KHz Freq = 1e3
	MHz Freq = 1e6
	GHz Freq = 1e9
)

// GHzF returns f expressed in gigahertz.
func (f Freq) GHzF() float64 { return float64(f) / 1e9 }

// MHzF returns f expressed in megahertz.
func (f Freq) MHzF() float64 { return float64(f) / 1e6 }

// Ratio returns the hardware ratio for f given a bus-clock granularity,
// rounding to the nearest multiple. Intel uncore and core ratios use a
// 100 MHz granularity.
func (f Freq) Ratio(gran Freq) uint64 {
	if gran <= 0 {
		return 0
	}
	return uint64(math.Round(float64(f) / float64(gran)))
}

// FromRatio builds a frequency from a hardware ratio and granularity.
// The ratio is a dimensionless count, so the product is formed on
// float64 and only the result carries the Freq dimension.
func FromRatio(ratio uint64, gran Freq) Freq { return Freq(float64(ratio) * float64(gran)) }

// String formats the frequency with an adaptive unit.
func (f Freq) String() string {
	switch {
	case f >= GHz:
		return trimZeros(strconv.FormatFloat(f.GHzF(), 'f', 2, 64)) + "GHz"
	case f >= MHz:
		return trimZeros(strconv.FormatFloat(f.MHzF(), 'f', 1, 64)) + "MHz"
	case f >= KHz:
		return trimZeros(strconv.FormatFloat(float64(f)/1e3, 'f', 1, 64)) + "kHz"
	default:
		return trimZeros(strconv.FormatFloat(float64(f), 'f', 1, 64)) + "Hz"
	}
}

// hasFoldSuffix reports whether s ends in the ASCII suffix suf,
// compared case-insensitively byte by byte. Working on raw bytes keeps
// suffix trimming exact for any input (strings.ToLower can change a
// string's byte length on some Unicode inputs).
func hasFoldSuffix(s, suf string) bool {
	return len(s) >= len(suf) && strings.EqualFold(s[len(s)-len(suf):], suf)
}

// ParseFreq parses strings such as "2.4GHz", "2400MHz" or "2400000000".
// A bare number is interpreted as hertz. Negative and non-finite
// values are rejected.
func ParseFreq(s string) (Freq, error) {
	t := strings.TrimSpace(s)
	// The suffix selects a dimensionless scale factor; the Freq
	// dimension is attached once, after the multiply.
	unit := float64(Hz)
	for _, u := range []struct {
		suf  string
		unit Freq
	}{{"ghz", GHz}, {"mhz", MHz}, {"khz", KHz}, {"hz", Hz}} {
		if hasFoldSuffix(t, u.suf) {
			unit, t = float64(u.unit), t[:len(t)-len(u.suf)]
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse frequency %q: %w", s, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("units: non-finite frequency %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative frequency %q", s)
	}
	res := Freq(v * unit)
	if math.IsInf(float64(res), 0) {
		return 0, fmt.Errorf("units: frequency %q overflows", s)
	}
	return res, nil
}

// Power is an electrical power in watts.
type Power float64

// Common power units. MW is megawatts (site budgets); nothing in
// EAR's domain is measured in milliwatts.
const (
	Watt Power = 1
	KW   Power = 1e3
	MW   Power = 1e6
)

// Watts returns the power as a float64 in watts.
func (p Power) Watts() float64 { return float64(p) }

// String formats the power in watts with two decimals.
func (p Power) String() string {
	return trimZeros(strconv.FormatFloat(float64(p), 'f', 2, 64)) + "W"
}

// ParsePower parses strings such as "300W", "1.5kW" or "42500"
// (cluster power budgets and node power readings). A bare number is
// interpreted as watts. Negative and non-finite values are rejected.
func ParsePower(s string) (Power, error) {
	t := strings.TrimSpace(s)
	unit := 1.0
	switch {
	case hasFoldSuffix(t, "kw"):
		unit, t = 1e3, t[:len(t)-2]
	case hasFoldSuffix(t, "mw"):
		// Megawatts: site budgets, not milliwatts — nothing in EAR's
		// domain is measured in milliwatts.
		unit, t = 1e6, t[:len(t)-2]
	case hasFoldSuffix(t, "w"):
		t = t[:len(t)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse power %q: %w", s, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("units: non-finite power %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative power %q", s)
	}
	res := v * unit
	if math.IsInf(res, 0) {
		return 0, fmt.Errorf("units: power %q overflows", s)
	}
	return Power(res), nil
}

// Energy is an amount of energy in joules.
type Energy float64

// Common energy units.
const (
	Joule Energy = 1
	KJ    Energy = 1e3
)

// Joules returns the energy as a float64 in joules.
func (e Energy) Joules() float64 { return float64(e) }

// WattSeconds constructs the energy dissipated by power p over d seconds.
func WattSeconds(p Power, seconds float64) Energy {
	return Energy(float64(p) * seconds)
}

// Over returns the average power of e dissipated over the given duration.
// It returns 0 for non-positive durations.
func (e Energy) Over(seconds float64) Power {
	if seconds <= 0 {
		return 0
	}
	return Power(float64(e) / seconds)
}

// String formats the energy in joules (or kJ above 10 kJ).
func (e Energy) String() string {
	if math.Abs(float64(e)) >= 1e4 {
		return trimZeros(strconv.FormatFloat(float64(e)/1e3, 'f', 2, 64)) + "kJ"
	}
	return trimZeros(strconv.FormatFloat(float64(e), 'f', 2, 64)) + "J"
}

// Seconds is a duration expressed in seconds. The simulator uses float
// seconds rather than time.Duration to avoid overflow and keep the math
// transparent.
type Seconds float64

// String formats the duration.
func (s Seconds) String() string {
	return trimZeros(strconv.FormatFloat(float64(s), 'f', 3, 64)) + "s"
}

// PercentChange returns 100*(now-ref)/ref, or 0 when ref is 0.
func PercentChange(ref, now float64) float64 {
	if ref == 0 {
		return 0
	}
	return 100 * (now - ref) / ref
}

// trimZeros removes trailing zeros (and a trailing dot) from a fixed-point
// formatted number so that "2.40" prints as "2.4" and "300.00" as "300".
func trimZeros(s string) string {
	if !strings.Contains(s, ".") {
		return s
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}
