package units

import "testing"

// The shared contract for both parsers: never panic, never accept a
// negative or non-finite value, and formatting normalizes — once a
// value has been through one parse→format round, further rounds are a
// fixed point. (The very first format may shift the adaptive unit at a
// decade boundary: 999.96 Hz prints as "1000Hz", which reparses to
// "1kHz". After that the string is stable.)

// FuzzParseFrequency feeds arbitrary strings through ParseFreq.
func FuzzParseFrequency(f *testing.F) {
	for _, s := range []string{
		"2.4GHz", "2400MHz", "2400000 kHz", "2400000000", "0",
		"  1.8 ghz ", "100Hz", "2.6E9", "-1GHz", "NaNGHz", "+InfMHz",
		"KHz", // Kelvin sign: ToLower would change the byte length
		"9e999",    // overflows to +Inf in ParseFloat
		"1e300GHz", // finite number, overflows after the unit multiply
		"999.96",   // rounds across the Hz/kHz decade boundary
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseFreq(s)
		if err != nil {
			return
		}
		if v < 0 {
			t.Fatalf("ParseFreq(%q) accepted negative value %v", s, v)
		}
		s1 := v.String()
		v2, err := ParseFreq(s1)
		if err != nil {
			t.Fatalf("ParseFreq(%q) = %v, but reparse of %q failed: %v", s, v, s1, err)
		}
		s2 := v2.String()
		v3, err := ParseFreq(s2)
		if err != nil {
			t.Fatalf("reparse of normalized %q failed: %v", s2, err)
		}
		if s3 := v3.String(); s3 != s2 {
			t.Fatalf("format/parse not a fixed point: %q -> %q -> %q -> %q", s, s1, s2, s3)
		}
	})
}

// FuzzParsePower is the same contract for ParsePower.
func FuzzParsePower(f *testing.F) {
	for _, s := range []string{
		"300W", "1.5kW", "42500", "0", " 245 w ", "2MW", "-5W",
		"NaNW", "InfkW", "KW", "9e999", "1e307kW",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParsePower(s)
		if err != nil {
			return
		}
		if v < 0 {
			t.Fatalf("ParsePower(%q) accepted negative value %v", s, v)
		}
		s1 := v.String()
		v2, err := ParsePower(s1)
		if err != nil {
			t.Fatalf("ParsePower(%q) = %v, but reparse of %q failed: %v", s, v, s1, err)
		}
		s2 := v2.String()
		v3, err := ParsePower(s2)
		if err != nil {
			t.Fatalf("reparse of normalized %q failed: %v", s2, err)
		}
		if s3 := v3.String(); s3 != s2 {
			t.Fatalf("format/parse not a fixed point: %q -> %q -> %q -> %q", s, s1, s2, s3)
		}
	})
}
