package report

import (
	"errors"
	"strings"
	"testing"
)

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink failure") }

func sample() Table {
	t := Table{
		Title:   "Sample",
		Columns: []string{"name", "value"},
	}
	_ = t.AddRow("alpha", "1")
	_ = t.AddRow("a,b", "2.50")
	return t
}

func TestAddRowArity(t *testing.T) {
	tab := Table{Columns: []string{"a", "b"}}
	if err := tab.AddRow("only one"); err == nil {
		t.Error("expected error for short row")
	}
	if err := tab.AddRow("1", "2", "3"); err == nil {
		t.Error("expected error for long row")
	}
	if err := tab.AddRow("1", "2"); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
}

func TestRenderAlignment(t *testing.T) {
	out := sample().String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Sample" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name ") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("rule = %q", lines[2])
	}
	// Columns align: "value" column starts at the same offset on every
	// row.
	idx := strings.Index(lines[1], "value")
	for _, l := range lines[3:] {
		if len(l) < idx {
			t.Errorf("row too short: %q", l)
			continue
		}
	}
	if !strings.Contains(out, "a,b") {
		t.Error("cell content lost")
	}
}

func TestRenderWithoutTitle(t *testing.T) {
	tab := Table{Columns: []string{"x"}}
	_ = tab.AddRow("1")
	out := tab.String()
	if strings.HasPrefix(out, "\n") {
		t.Error("leading newline without title")
	}
	if !strings.HasPrefix(out, "x") {
		t.Errorf("output = %q", out)
	}
}

func TestCSVQuoting(t *testing.T) {
	var b strings.Builder
	if err := sample().CSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "name,value" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != `"a,b",2.50` {
		t.Errorf("quoted row = %q", lines[2])
	}
}

func TestWriterErrorsPropagate(t *testing.T) {
	if err := sample().Render(failWriter{}); err == nil {
		t.Error("render error not propagated")
	}
	if err := sample().CSV(failWriter{}); err == nil {
		t.Error("CSV error not propagated")
	}
}

func TestFormatters(t *testing.T) {
	if F(2.456, 2) != "2.46" {
		t.Errorf("F = %q", F(2.456, 2))
	}
	if Pct(12.3456) != "12.35%" {
		t.Errorf("Pct = %q", Pct(12.3456))
	}
	if GHz(2.4) != "2.40" {
		t.Errorf("GHz = %q", GHz(2.4))
	}
	if GHz(1.987) != "1.99" {
		t.Errorf("GHz = %q", GHz(1.987))
	}
}
