// Package report renders experiment results as fixed-width text tables
// (the form the paper's tables take) and as CSV for plotting.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond the column count are rejected.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// Render writes the table as aligned text.
func (t Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quoted when needed).
func (t Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(strconv.Quote(cell))
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string (for tests and logs).
func (t Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// F formats a float with the given number of decimals, trimming to a
// compact form.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Pct formats a percentage with two decimals and a % sign.
func Pct(v float64) string {
	return strconv.FormatFloat(v, 'f', 2, 64) + "%"
}

// GHz formats a frequency in GHz with two decimals (the paper's table
// precision).
func GHz(v float64) string {
	return strconv.FormatFloat(v, 'f', 2, 64)
}
