package earconf

import (
	"strings"
	"testing"
)

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if !Default().Authorized("anything") {
		t.Error("empty authorized list must allow everything")
	}
}

func TestParseFullFile(t *testing.T) {
	in := `
# site configuration
DefaultPolicy = min_energy
DefaultCPUPolicyTh = 0.03
DefaultUncPolicyTh=0.01

MinSignatureWindowSec=15
SignatureChangeTh=0.2
AuthorizedPolicies = monitoring, min_energy , min_energy_eufs
ClusterPowerBudgetW=5000
`
	c, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.DefaultPolicy != "min_energy" || c.DefaultCPUPolicyTh != 0.03 ||
		c.DefaultUncPolicyTh != 0.01 || c.MinSignatureWindowSec != 15 ||
		c.SignatureChangeTh != 0.2 || c.ClusterPowerBudgetW != 5000 {
		t.Errorf("parsed = %+v", c)
	}
	if len(c.AuthorizedPolicies) != 3 {
		t.Fatalf("authorized = %v", c.AuthorizedPolicies)
	}
	if !c.Authorized("min_energy_eufs") {
		t.Error("listed policy not authorized")
	}
	if c.Authorized("min_time") {
		t.Error("unlisted policy authorized")
	}
}

func TestParsePartialFileKeepsDefaults(t *testing.T) {
	c, err := Parse(strings.NewReader("DefaultCPUPolicyTh=0.04\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.DefaultPolicy != "min_energy_eufs" {
		t.Errorf("default policy lost: %q", c.DefaultPolicy)
	}
	if c.DefaultCPUPolicyTh != 0.04 {
		t.Errorf("override lost: %v", c.DefaultCPUPolicyTh)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []string{
		"garbage line\n",
		"UnknownKey=1\n",
		"DefaultCPUPolicyTh=notanumber\n",
		"DefaultCPUPolicyTh=2\n",      // out of range
		"DefaultUncPolicyTh=-0.1\n",   // out of range
		"MinSignatureWindowSec=0.5\n", // below meter resolution
		"SignatureChangeTh=0\n",       // out of range
		"ClusterPowerBudgetW=-10\n",   // negative
		"DefaultPolicy=\n",            // empty
	}
	for i, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("case %d (%q): expected error", i, strings.TrimSpace(in))
		}
	}
}

func TestValidateDirect(t *testing.T) {
	c := Default()
	c.SignatureChangeTh = 1.5
	if err := c.Validate(); err == nil {
		t.Error("expected error for out-of-range signature threshold")
	}
}
