// Package earconf parses the cluster configuration file that drives
// EAR's defaults, in the spirit of ear.conf: the sysadmin sets the
// default policy and its thresholds, the signature cadence, the
// authorised policy list, and the global manager's power budget; users
// may then only tighten, not loosen, what the file allows.
//
// The format is the INI-like key=value layout ear.conf uses:
//
//	# comments and blank lines are ignored
//	DefaultPolicy=min_energy_eufs
//	DefaultCPUPolicyTh=0.05
//	DefaultUncPolicyTh=0.02
//	MinSignatureWindowSec=10
//	SignatureChangeTh=0.15
//	AuthorizedPolicies=monitoring,min_energy,min_energy_eufs
//	ClusterPowerBudgetW=0
package earconf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Config is the parsed cluster configuration.
type Config struct {
	// DefaultPolicy is applied when a job does not request one.
	DefaultPolicy string `conf:"DefaultPolicy"`
	// DefaultCPUPolicyTh and DefaultUncPolicyTh are the site's policy
	// thresholds.
	DefaultCPUPolicyTh float64 `conf:"DefaultCPUPolicyTh"`
	DefaultUncPolicyTh float64 `conf:"DefaultUncPolicyTh"`
	// MinSignatureWindowSec is EARL's signature cadence floor.
	MinSignatureWindowSec float64 `conf:"MinSignatureWindowSec"`
	// SignatureChangeTh re-applies policies on behaviour changes.
	SignatureChangeTh float64 `conf:"SignatureChangeTh"`
	// AuthorizedPolicies restricts which policies jobs may request;
	// empty means all registered policies.
	AuthorizedPolicies []string `conf:"AuthorizedPolicies"`
	// ClusterPowerBudgetW enables the global manager when positive.
	ClusterPowerBudgetW float64 `conf:"ClusterPowerBudgetW"`
}

// Default returns the site defaults used when no file is present —
// the configuration the paper evaluates with.
func Default() Config {
	return Config{
		DefaultPolicy:         "min_energy_eufs",
		DefaultCPUPolicyTh:    0.05,
		DefaultUncPolicyTh:    0.02,
		MinSignatureWindowSec: 10,
		SignatureChangeTh:     0.15,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.DefaultPolicy == "":
		return fmt.Errorf("earconf: DefaultPolicy is required")
	case c.DefaultCPUPolicyTh < 0 || c.DefaultCPUPolicyTh > 1:
		return fmt.Errorf("earconf: DefaultCPUPolicyTh %g outside [0,1]", c.DefaultCPUPolicyTh)
	case c.DefaultUncPolicyTh < 0 || c.DefaultUncPolicyTh > 1:
		return fmt.Errorf("earconf: DefaultUncPolicyTh %g outside [0,1]", c.DefaultUncPolicyTh)
	case c.MinSignatureWindowSec < 1:
		return fmt.Errorf("earconf: MinSignatureWindowSec must be >= 1 (the DC meter updates once per second)")
	case c.SignatureChangeTh <= 0 || c.SignatureChangeTh > 1:
		return fmt.Errorf("earconf: SignatureChangeTh %g outside (0,1]", c.SignatureChangeTh)
	case c.ClusterPowerBudgetW < 0:
		return fmt.Errorf("earconf: ClusterPowerBudgetW must be non-negative")
	}
	return nil
}

// Authorized reports whether the site allows the given policy.
func (c Config) Authorized(policy string) bool {
	if len(c.AuthorizedPolicies) == 0 {
		return true
	}
	for _, p := range c.AuthorizedPolicies {
		if p == policy {
			return true
		}
	}
	return false
}

// Parse reads a configuration, starting from Default and overriding
// with the file's keys. Unknown keys are rejected (they are typos until
// proven otherwise).
func Parse(r io.Reader) (Config, error) {
	c := Default()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		key, val, ok := strings.Cut(raw, "=")
		if !ok {
			return Config{}, fmt.Errorf("earconf: line %d: expected key=value, got %q", line, raw)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if err := c.set(key, val); err != nil {
			return Config{}, fmt.Errorf("earconf: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return Config{}, fmt.Errorf("earconf: read: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// set applies one key.
func (c *Config) set(key, val string) error {
	parseF := func() (float64, error) {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", key, err)
		}
		return v, nil
	}
	switch key {
	case "DefaultPolicy":
		c.DefaultPolicy = val
	case "DefaultCPUPolicyTh":
		v, err := parseF()
		if err != nil {
			return err
		}
		c.DefaultCPUPolicyTh = v
	case "DefaultUncPolicyTh":
		v, err := parseF()
		if err != nil {
			return err
		}
		c.DefaultUncPolicyTh = v
	case "MinSignatureWindowSec":
		v, err := parseF()
		if err != nil {
			return err
		}
		c.MinSignatureWindowSec = v
	case "SignatureChangeTh":
		v, err := parseF()
		if err != nil {
			return err
		}
		c.SignatureChangeTh = v
	case "AuthorizedPolicies":
		c.AuthorizedPolicies = nil
		for _, p := range strings.Split(val, ",") {
			if p = strings.TrimSpace(p); p != "" {
				c.AuthorizedPolicies = append(c.AuthorizedPolicies, p)
			}
		}
	case "ClusterPowerBudgetW":
		v, err := parseF()
		if err != nil {
			return err
		}
		c.ClusterPowerBudgetW = v
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}
