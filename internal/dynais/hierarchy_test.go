package dynais

import (
	"testing"
)

func TestNewHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(0, 16); err == nil {
		t.Error("expected error for zero levels")
	}
	if _, err := NewHierarchy(2, 0); err == nil {
		t.Error("expected error for zero max period")
	}
	h, err := NewHierarchy(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 3 {
		t.Errorf("levels = %d", h.Levels())
	}
}

// feedNested emits reps outer iterations, each consisting of innerReps
// repetitions of an inner MPI pattern.
func feedNested(h *Hierarchy, inner []uint32, innerReps, outerReps int) {
	for o := 0; o < outerReps; o++ {
		for r := 0; r < innerReps; r++ {
			for _, ev := range inner {
				h.Push(ev)
			}
		}
	}
}

func TestDetectsInnerLoopAtLevelZero(t *testing.T) {
	h, err := NewHierarchy(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	feedNested(h, []uint32{1, 2, 3}, 10, 1)
	if !h.Locked(0) || h.Period(0) != 3 {
		t.Errorf("level 0: locked=%v period=%d, want period 3", h.Locked(0), h.Period(0))
	}
}

func TestDetectsOuterStructure(t *testing.T) {
	// Outer iteration = 4 inner-A iterations; the inner pattern locks
	// at level 0 and the stream of identical iteration tokens locks at
	// level 1 with period 1 (homogeneous outer body).
	h, err := NewHierarchy(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	feedNested(h, []uint32{10, 20, 30, 40}, 4, 8)
	if !h.Locked(1) {
		t.Fatal("level 1 never locked on homogeneous nesting")
	}
	if h.Period(1) != 1 {
		t.Errorf("level 1 period = %d, want 1", h.Period(1))
	}
	lvl, period := h.TopLocked()
	if lvl != 1 || period != 1 {
		t.Errorf("TopLocked = (%d,%d)", lvl, period)
	}
}

func TestDetectsAlternatingPhasesAtLevelOne(t *testing.T) {
	// Outer time step = 3 iterations of solver A then 2 of solver B:
	// level 0 relocks per phase; level 1 sees the token stream and
	// locks on the alternation.
	h, err := NewHierarchy(2, 32)
	if err != nil {
		t.Fatal(err)
	}
	a := []uint32{1, 2, 3}
	b := []uint32{7, 8, 9, 10}
	for step := 0; step < 30; step++ {
		feedNested(h, a, 6, 1)
		feedNested(h, b, 6, 1)
	}
	if !h.Locked(1) {
		t.Fatal("level 1 never locked on alternating phases")
	}
	// Tokens alternate A...A B...B; the minimal period found must
	// divide one full A+B group's token count and be > 1 (it must see
	// both phases, not a constant stream).
	if p := h.Period(1); p < 2 {
		t.Errorf("level 1 period = %d, want >= 2 (both phases)", p)
	}
}

func TestDistinctInnerLoopsProduceDistinctTokens(t *testing.T) {
	h, err := NewHierarchy(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Same period, different events: tokens must differ.
	t1 := h.patternToken(0, 0) // empty
	h.recent[0] = []uint32{1, 2, 3}
	tokA := h.patternToken(0, 3)
	h.recent[0] = []uint32{4, 5, 6}
	tokB := h.patternToken(0, 3)
	if tokA == tokB {
		t.Error("different patterns hashed to the same token")
	}
	_ = t1
}

func TestHierarchyReset(t *testing.T) {
	h, err := NewHierarchy(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	feedNested(h, []uint32{1, 2}, 4, 6)
	if !h.Locked(0) {
		t.Fatal("not locked before reset")
	}
	h.Reset()
	if h.Locked(0) || h.Locked(1) {
		t.Error("levels still locked after reset")
	}
	if lvl, _ := h.TopLocked(); lvl != -1 {
		t.Errorf("TopLocked after reset = %d", lvl)
	}
}

func TestHierarchyBoundsChecks(t *testing.T) {
	h, err := NewHierarchy(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Locked(-1) || h.Locked(5) {
		t.Error("out-of-range Locked must be false")
	}
	if h.Period(-1) != 0 || h.Period(5) != 0 {
		t.Error("out-of-range Period must be 0")
	}
	// Single level: iteration completions have nowhere to go but must
	// not panic.
	for i := 0; i < 50; i++ {
		h.Push(uint32(i % 2))
	}
	if !h.Locked(0) {
		t.Error("single-level hierarchy failed to lock")
	}
}

func TestPushStatesReported(t *testing.T) {
	h, err := NewHierarchy(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var sawIter0, sawLock1 bool
	for o := 0; o < 10; o++ {
		for r := 0; r < 3; r++ {
			for _, ev := range []uint32{5, 6} {
				sts := h.Push(ev)
				if len(sts) != 2 {
					t.Fatalf("states = %v", sts)
				}
				if sts[0] == NewIteration {
					sawIter0 = true
				}
				if sts[1] == NewLoop || sts[1] == NewIteration {
					sawLock1 = true
				}
			}
		}
	}
	if !sawIter0 {
		t.Error("level 0 never reported an iteration")
	}
	if !sawLock1 {
		t.Error("level 1 never reported activity")
	}
}
