package dynais

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("expected error for zero max period")
	}
	if _, err := New(-3); err == nil {
		t.Error("expected error for negative max period")
	}
}

func TestDetectsSimpleLoop(t *testing.T) {
	d, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	pattern := []uint32{10, 20, 30, 40}
	var lockEvent, iterations int
	for rep := 0; rep < 10; rep++ {
		for i, ev := range pattern {
			st := d.Push(ev)
			switch st {
			case NewLoop:
				lockEvent = rep*len(pattern) + i
			case NewIteration:
				iterations++
			}
		}
	}
	if !d.Locked() {
		t.Fatal("detector never locked")
	}
	if d.Period() != len(pattern) {
		t.Errorf("period = %d, want %d", d.Period(), len(pattern))
	}
	// Lock must happen after MinRepetitions patterns.
	if lockEvent >= 4*len(pattern) {
		t.Errorf("locked too late: event %d", lockEvent)
	}
	// After locking, every full pattern yields one NewIteration.
	if iterations < 5 {
		t.Errorf("iterations = %d, want >= 5", iterations)
	}
}

func TestPeriodOneRun(t *testing.T) {
	d, _ := New(8)
	var locked bool
	for i := 0; i < 10; i++ {
		st := d.Push(7)
		if st == NewLoop {
			locked = true
		}
	}
	if !locked || d.Period() != 1 {
		t.Errorf("run of identical events: locked=%v period=%d, want period 1", locked, d.Period())
	}
}

func TestPrefersSmallestPeriod(t *testing.T) {
	// 1,2,1,2,... is period 2, not 4.
	d, _ := New(16)
	for i := 0; i < 12; i++ {
		d.Push(uint32(1 + i%2))
	}
	if d.Period() != 2 {
		t.Errorf("period = %d, want 2", d.Period())
	}
}

func TestLoopBreakAndRelock(t *testing.T) {
	d, _ := New(8)
	pattern := []uint32{1, 2, 3}
	for rep := 0; rep < 5; rep++ {
		for _, ev := range pattern {
			d.Push(ev)
		}
	}
	if !d.Locked() {
		t.Fatal("not locked")
	}
	// Break the loop.
	st := d.Push(99)
	if st != EndLoop {
		t.Errorf("state on break = %v, want END_LOOP", st)
	}
	if d.Locked() {
		t.Error("still locked after break")
	}
	// A new structure locks again.
	newPat := []uint32{5, 6}
	var relocked bool
	for rep := 0; rep < 6; rep++ {
		for _, ev := range newPat {
			if d.Push(ev) == NewLoop {
				relocked = true
			}
		}
	}
	if !relocked || d.Period() != 2 {
		t.Errorf("relock failed: locked=%v period=%d", d.Locked(), d.Period())
	}
}

func TestNoFalseLockOnRandomStream(t *testing.T) {
	// A stream of unique events must never lock.
	d, _ := New(16)
	for i := 0; i < 500; i++ {
		if st := d.Push(uint32(i)); st != NoLoop {
			t.Fatalf("event %d: state %v on strictly increasing stream", i, st)
		}
	}
}

func TestIterationCadenceExact(t *testing.T) {
	// Once locked, NewIteration fires exactly once per period.
	d, _ := New(32)
	pattern := []uint32{11, 22, 33, 44, 55}
	// Prime to lock.
	for rep := 0; rep < MinRepetitions; rep++ {
		for _, ev := range pattern {
			d.Push(ev)
		}
	}
	if !d.Locked() {
		t.Fatal("not locked after priming")
	}
	iterations := 0
	const reps = 20
	for rep := 0; rep < reps; rep++ {
		for _, ev := range pattern {
			if d.Push(ev) == NewIteration {
				iterations++
			}
		}
	}
	if iterations != reps {
		t.Errorf("iterations = %d, want %d", iterations, reps)
	}
}

func TestDetectsAnyPeriodProperty(t *testing.T) {
	// For any period p in [1,12] and any event alphabet, a clean
	// periodic stream must lock with the right period (or a divisor
	// when the random pattern is itself periodic).
	fn := func(seed int64, pRaw uint8) bool {
		p := int(pRaw%12) + 1
		rng := rand.New(rand.NewSource(seed))
		pattern := make([]uint32, p)
		for i := range pattern {
			pattern[i] = rng.Uint32()
		}
		d, err := New(16)
		if err != nil {
			return false
		}
		for rep := 0; rep < MinRepetitions+4; rep++ {
			for _, ev := range pattern {
				d.Push(ev)
			}
		}
		if !d.Locked() {
			return false
		}
		// Detected period must divide the true period (the random
		// pattern may repeat internally).
		return p%d.Period() == 0
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	d, _ := New(8)
	for i := 0; i < 10; i++ {
		d.Push(uint32(1 + i%2))
	}
	if !d.Locked() {
		t.Fatal("not locked")
	}
	d.Reset()
	if d.Locked() || d.Period() != 0 {
		t.Error("reset did not clear lock")
	}
	if st := d.Push(1); st != NoLoop {
		t.Errorf("state after reset = %v, want NO_LOOP", st)
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		NoLoop: "NO_LOOP", InLoop: "IN_LOOP", NewIteration: "NEW_ITERATION",
		NewLoop: "NEW_LOOP", EndLoop: "END_LOOP", State(42): "State(42)",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestWindowBounded(t *testing.T) {
	d, _ := New(4)
	for i := 0; i < 10000; i++ {
		d.Push(uint32(i % 3))
	}
	if len(d.window) > 4*(MinRepetitions+1)+1 {
		t.Errorf("window grew to %d events", len(d.window))
	}
}
