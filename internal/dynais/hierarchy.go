package dynais

import (
	"fmt"
)

// Hierarchy stacks detectors the way DynAIS's multi-level windows do:
// level 0 consumes raw MPI events; whenever level k completes an
// iteration, a token summarising that iteration (a hash of its event
// pattern) is fed to level k+1. Nested application structure — inner
// solver loops inside outer time steps — then surfaces as a lock at a
// higher level, whose period counts inner-loop iterations per outer
// iteration.
type Hierarchy struct {
	levels []*Detector
	// ring of recent events per level, for pattern hashing.
	recent [][]uint32
}

// NewHierarchy builds a detector stack. levels must be at least 1;
// maxPeriod bounds period detection at every level.
func NewHierarchy(levels, maxPeriod int) (*Hierarchy, error) {
	if levels < 1 {
		return nil, fmt.Errorf("dynais: hierarchy needs at least one level, got %d", levels)
	}
	h := &Hierarchy{
		levels: make([]*Detector, levels),
		recent: make([][]uint32, levels),
	}
	for i := range h.levels {
		d, err := New(maxPeriod)
		if err != nil {
			return nil, err
		}
		h.levels[i] = d
	}
	return h, nil
}

// Levels returns the number of stacked detectors.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// Push consumes one raw event and returns the state of every level
// after propagation (index 0 = raw level).
func (h *Hierarchy) Push(ev uint32) []State {
	out := make([]State, len(h.levels))
	for i := range out {
		out[i] = NoLoop
		if h.levels[i].Locked() {
			out[i] = InLoop
		}
	}
	h.push(0, ev, out)
	return out
}

// push feeds one event into the given level, propagating iteration
// completions upward.
func (h *Hierarchy) push(level int, ev uint32, out []State) {
	d := h.levels[level]
	h.recent[level] = append(h.recent[level], ev)
	if max := cap(h.recent[level]); len(h.recent[level]) > 4*64 && max > 0 {
		h.recent[level] = h.recent[level][len(h.recent[level])-4*64:]
	}
	st := d.Push(ev)
	out[level] = st
	if st != NewIteration {
		return
	}
	if level+1 >= len(h.levels) {
		return
	}
	// Token: hash of the completed iteration's event pattern, so two
	// different inner loops of equal length produce distinct tokens.
	h.push(level+1, h.patternToken(level, d.Period()), out)
}

// patternToken hashes the last period events of a level.
func (h *Hierarchy) patternToken(level, period int) uint32 {
	buf := h.recent[level]
	if period > len(buf) {
		period = len(buf)
	}
	hash := uint32(2166136261)
	for _, e := range buf[len(buf)-period:] {
		hash = (hash ^ e) * 16777619
	}
	return hash
}

// Locked reports whether the given level currently has a lock.
func (h *Hierarchy) Locked(level int) bool {
	if level < 0 || level >= len(h.levels) {
		return false
	}
	return h.levels[level].Locked()
}

// Period returns the detected period at a level (0 when unlocked or
// out of range).
func (h *Hierarchy) Period(level int) int {
	if level < 0 || level >= len(h.levels) {
		return 0
	}
	return h.levels[level].Period()
}

// TopLocked returns the highest locked level and its period, or (-1, 0)
// when nothing is locked. Policies prefer the highest level: it tracks
// the outermost repetitive structure, whose iterations are the natural
// signature boundary.
func (h *Hierarchy) TopLocked() (level, period int) {
	for i := len(h.levels) - 1; i >= 0; i-- {
		if h.levels[i].Locked() {
			return i, h.levels[i].Period()
		}
	}
	return -1, 0
}

// Reset clears every level.
func (h *Hierarchy) Reset() {
	for i, d := range h.levels {
		d.Reset()
		h.recent[i] = h.recent[i][:0]
	}
}
