// Package dynais implements dynamic iterative-structure detection over a
// stream of MPI call-site events, in the spirit of EAR's DynAIS
// technology: without any user hints it discovers the outer loop of an
// MPI application from the repetitive sequence of MPI calls, reporting
// when a loop begins, when each new iteration starts, and when the loop
// is lost.
//
// The detector keeps a sliding window of recent event identifiers. While
// searching, it looks for the smallest period p such that the last
// MinRepetitions·p events are p-periodic. Once locked, each incoming
// event is checked against the event one period back; completing a
// period reports a new iteration, and a mismatch drops back to search.
package dynais

import (
	"fmt"
)

// State is the detector's report for one event.
type State int

// Detector states.
const (
	// NoLoop: no periodic structure currently detected.
	NoLoop State = iota
	// InLoop: inside a detected loop, mid-iteration.
	InLoop
	// NewIteration: this event completed one full period.
	NewIteration
	// NewLoop: a loop has just been detected (first lock).
	NewLoop
	// EndLoop: the previously detected loop broke on this event.
	EndLoop
)

// String names the state.
func (s State) String() string {
	switch s {
	case NoLoop:
		return "NO_LOOP"
	case InLoop:
		return "IN_LOOP"
	case NewIteration:
		return "NEW_ITERATION"
	case NewLoop:
		return "NEW_LOOP"
	case EndLoop:
		return "END_LOOP"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// MinRepetitions is how many consecutive periods must match before the
// detector locks onto a loop.
const MinRepetitions = 3

// Detector detects periodic event streams. Construct with New.
type Detector struct {
	maxPeriod int
	window    []uint32 // most recent events, bounded
	locked    bool
	period    int
	phase     int // events seen since the last iteration boundary
}

// New returns a detector able to find periods up to maxPeriod events.
func New(maxPeriod int) (*Detector, error) {
	if maxPeriod < 1 {
		return nil, fmt.Errorf("dynais: max period must be >= 1, got %d", maxPeriod)
	}
	return &Detector{maxPeriod: maxPeriod}, nil
}

// Period returns the detected period length, or 0 when not locked.
func (d *Detector) Period() int {
	if !d.locked {
		return 0
	}
	return d.period
}

// Locked reports whether a loop is currently detected.
func (d *Detector) Locked() bool { return d.locked }

// Push consumes one event and returns the resulting state.
func (d *Detector) Push(ev uint32) State {
	d.window = append(d.window, ev)
	// Bound the window: we never need more than what detection of the
	// largest period requires.
	if maxLen := d.maxPeriod*(MinRepetitions+1) + 1; len(d.window) > maxLen {
		d.window = d.window[len(d.window)-maxLen:]
	}

	if d.locked {
		// The new event must match the event one period back.
		idx := len(d.window) - 1 - d.period
		if idx >= 0 && d.window[idx] == ev {
			d.phase++
			if d.phase == d.period {
				d.phase = 0
				return NewIteration
			}
			return InLoop
		}
		// Loop broken: drop the lock but keep the window so that a new
		// structure can be found quickly.
		d.locked = false
		d.period = 0
		d.phase = 0
		return EndLoop
	}

	if p := d.findPeriod(); p > 0 {
		d.locked = true
		d.period = p
		d.phase = 0
		return NewLoop
	}
	return NoLoop
}

// findPeriod searches for the smallest period p whose last
// MinRepetitions·p events are p-periodic. Periods of length 1 require a
// run of identical events.
func (d *Detector) findPeriod() int {
	n := len(d.window)
	for p := 1; p <= d.maxPeriod; p++ {
		need := p * MinRepetitions
		if n < need {
			// Larger periods need even more history.
			return 0
		}
		ok := true
		base := n - need
		for i := base + p; i < n; i++ {
			if d.window[i] != d.window[i-p] {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	return 0
}

// Reset clears all detector state.
func (d *Detector) Reset() {
	d.window = d.window[:0]
	d.locked = false
	d.period = 0
	d.phase = 0
}
