package policy

import (
	"testing"
)

func TestDUFRegistered(t *testing.T) {
	found := false
	for _, n := range Names() {
		if n == DUF {
			found = true
		}
	}
	if !found {
		t.Fatal("duf not registered")
	}
}

func TestDUFProbesDownFromHWPoint(t *testing.T) {
	p, err := New(DUF, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := cpuBoundSig()
	// Hardware sits at 24; the controller starts probing below it.
	nf, st, err := p.Apply(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue || !nf.SetIMC || nf.IMCMaxRatio != 23 {
		t.Fatalf("first step = %+v %v, want probe to 23", nf, st)
	}
	if nf.CPUPstate != 1 {
		t.Errorf("DUF must not touch the CPU pstate, got %d", nf.CPUPstate)
	}
	// Feedback unchanged: keep probing.
	nf, st, err = p.Apply(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 23})
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue || nf.IMCMaxRatio != 22 {
		t.Errorf("second step = %+v %v", nf, st)
	}
}

func TestDUFBacksOffOnIPCLoss(t *testing.T) {
	p, err := New(DUF, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := cpuBoundSig()
	if _, _, err := p.Apply(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24}); err != nil {
		t.Fatal(err)
	}
	// IPC drops 4% (CPI rises): back off and hold.
	worse := sig
	worse.CPI = sig.CPI * 1.04
	nf, st, err := p.Apply(Inputs{Sig: worse, CurrentPstate: 1, CurrentUncoreRatio: 23})
	if err != nil {
		t.Fatal(err)
	}
	if st != Ready || nf.IMCMaxRatio != 24 {
		t.Errorf("backoff = %+v %v, want hold at 24", nf, st)
	}
	// While holding, the same feedback keeps it settled.
	nf, st, err = p.Apply(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	if st != Ready || nf.IMCMaxRatio != 24 {
		t.Errorf("hold = %+v %v", nf, st)
	}
}

func TestDUFBacksOffOnBandwidthLoss(t *testing.T) {
	p, err := New(DUF, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := memBoundSig()
	if _, _, err := p.Apply(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24}); err != nil {
		t.Fatal(err)
	}
	worse := sig
	worse.GBs = sig.GBs * 0.95
	_, st, err := p.Apply(Inputs{Sig: worse, CurrentPstate: 1, CurrentUncoreRatio: 23})
	if err != nil {
		t.Fatal(err)
	}
	if st != Ready {
		t.Errorf("state = %v, want backoff READY", st)
	}
}

func TestDUFReleasesOnPhaseImprovement(t *testing.T) {
	p, err := New(DUF, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := cpuBoundSig()
	if _, _, err := p.Apply(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24}); err != nil {
		t.Fatal(err)
	}
	// A new phase with much higher IPC: release the uncore.
	better := sig
	better.CPI = sig.CPI * 0.7
	nf, st, err := p.Apply(Inputs{Sig: better, CurrentPstate: 1, CurrentUncoreRatio: 23})
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue {
		t.Errorf("state = %v, want CONTINUE (restart)", st)
	}
	if nf.IMCMaxRatio != 24 {
		t.Errorf("release freqs = %+v, want full window", nf)
	}
}

func TestDUFFloorHolds(t *testing.T) {
	p, err := New(DUF, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := cpuBoundSig()
	in := Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24}
	nf, st, err := p.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20 && st == Continue; i++ {
		in.CurrentUncoreRatio = nf.IMCMaxRatio
		nf, st, err = p.Apply(in)
		if err != nil {
			t.Fatal(err)
		}
	}
	if st != Ready || nf.IMCMaxRatio != 12 {
		t.Errorf("floor = %+v %v, want hold at 12", nf, st)
	}
}

func TestDUFValidate(t *testing.T) {
	p, err := New(DUF, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := cpuBoundSig()
	if !p.Validate(Inputs{Sig: sig}) {
		t.Error("validate before any reference must pass")
	}
	if _, _, err := p.Apply(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24}); err != nil {
		t.Fatal(err)
	}
	if !p.Validate(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 23}) {
		t.Error("unchanged feedback must validate")
	}
	bad := sig
	bad.CPI = sig.CPI * 1.10
	if p.Validate(Inputs{Sig: bad, CurrentPstate: 1, CurrentUncoreRatio: 23}) {
		t.Error("10% IPC loss must fail validation")
	}
}

func TestDUFInvalidSignature(t *testing.T) {
	p, err := New(DUF, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Apply(Inputs{CurrentPstate: 1}); err == nil {
		t.Error("expected error for invalid signature")
	}
}

func TestDUFResetAndDefault(t *testing.T) {
	p, err := New(DUF, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := cpuBoundSig()
	if _, _, err := p.Apply(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24}); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	def := p.Default()
	if !def.SetIMC || def.IMCMaxRatio != 24 || def.IMCMinRatio != 12 {
		t.Errorf("default = %+v, want full window", def)
	}
	// After reset the probe restarts from the hardware point.
	nf, st, err := p.Apply(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 20})
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue || nf.IMCMaxRatio != 19 {
		t.Errorf("restart = %+v %v, want probe from 20", nf, st)
	}
}
