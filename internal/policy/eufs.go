package policy

import (
	"fmt"

	"goear/internal/metrics"
)

func init() {
	Register(MinEnergyEUFS, func(cfg Config) (Policy, error) {
		return newEUFS(MinEnergyEUFS, newMinEnergy(cfg), cfg), nil
	})
	Register(MinTimeEUFS, func(cfg Config) (Policy, error) {
		p := newEUFS(MinTimeEUFS, newMinTime(cfg), cfg)
		// The paper's §VIII direction for min_time: besides lowering the
		// uncore on compute phases, *raise* it for memory-bound phases
		// where the hardware heuristic settled low — performance first.
		p.raiseForMemBound = true
		return p, nil
	})
}

// eufsStage is the state of the paper's Fig. 2 diagram.
type eufsStage int

const (
	stCPUFreqSel eufsStage = iota
	stCompRef
	stIMCFreqSel
)

// String names the stage.
func (s eufsStage) String() string {
	switch s {
	case stCPUFreqSel:
		return "CPU_FREQ_SEL"
	case stCompRef:
		return "COMP_REF"
	case stIMCFreqSel:
		return "IMC_FREQ_SEL"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// eufs wraps a CPU-frequency selection policy with the paper's explicit
// uncore frequency selection state machine:
//
//	CPU_FREQ_SEL -> COMP_REF -> IMC_FREQ_SEL (xN) -> READY
//
// CPU_FREQ_SEL runs the base algorithm. If the selection is the default
// pstate no reference recomputation is needed and the policy proceeds to
// IMC selection directly; otherwise COMP_REF records reference CPI and
// GB/s measured at the new CPU frequency. IMC_FREQ_SEL then lowers the
// *maximum* uncore ratio one step (0.1 GHz) per signature — starting
// from the hardware-selected frequency when HWGuided — until CPI or GB/s
// degrade beyond unc_policy_th, at which point the last step is reverted
// and the policy reports READY.
type eufs struct {
	name string
	base Policy
	cfg  Config

	// raiseForMemBound makes the policy pin the uncore at the hardware
	// maximum for memory-bound phases instead of searching downward
	// (min_time_to_solution's performance-first variant, §VIII).
	raiseForMemBound bool

	stage    eufsStage
	cpuSel   int
	refCPI   float64
	refGBs   float64
	curMax   uint64
	started  bool
	lastDone NodeFreqs
}

func newEUFS(name string, base Policy, cfg Config) *eufs {
	return &eufs{name: name, base: base, cfg: cfg, stage: stCPUFreqSel}
}

func (p *eufs) Name() string { return p.name }

func (p *eufs) Apply(in Inputs) (NodeFreqs, State, error) {
	if !in.Sig.Valid() {
		return NodeFreqs{}, Ready, fmt.Errorf("policy %s: invalid signature", p.name)
	}
	switch p.stage {
	case stCPUFreqSel:
		nf, _, err := p.base.Apply(in)
		if err != nil {
			return NodeFreqs{}, Ready, err
		}
		p.cpuSel = nf.CPUPstate
		if nf.CPUPstate == p.cfg.DefaultPstate {
			// No CPU frequency change: the current signature already
			// is the reference; go straight to IMC selection.
			return p.compRef(in)
		}
		p.stage = stCompRef
		return nf, Continue, nil

	case stCompRef:
		return p.compRef(in)

	case stIMCFreqSel:
		return p.imcStep(in)
	}
	return NodeFreqs{}, Ready, fmt.Errorf("policy %s: corrupt stage %d", p.name, p.stage)
}

// compRef records the reference metrics and issues the first IMC step.
func (p *eufs) compRef(in Inputs) (NodeFreqs, State, error) {
	p.refCPI = in.Sig.CPI
	p.refGBs = in.Sig.GBs
	p.stage = stIMCFreqSel

	if p.raiseForMemBound && metrics.Classify(in.Sig) == metrics.MemBound {
		// Performance-first: force the uncore window wide open and pin
		// the floor at the maximum, so the hardware cannot dip below
		// full mesh bandwidth while this phase runs.
		p.started = true
		p.curMax = p.cfg.UncoreMaxRatio
		nf := NodeFreqs{
			CPUPstate:   p.cpuSel,
			SetIMC:      true,
			IMCMaxRatio: p.cfg.UncoreMaxRatio,
			IMCMinRatio: p.cfg.UncoreMaxRatio,
		}
		p.lastDone = nf
		return nf, Ready, nil
	}

	start := p.cfg.UncoreMaxRatio
	if p.cfg.HWGuided {
		// Use the hardware's own selection as the starting point: it
		// is conservative but much closer to the optimum than the
		// maximum (§V-B).
		start = clamp(in.CurrentUncoreRatio, p.cfg.UncoreMinRatio, p.cfg.UncoreMaxRatio)
	}
	p.started = true
	if start <= p.cfg.UncoreMinRatio {
		// Nothing to lower: settle immediately, pinning the window at
		// the hardware's level so it cannot drift back up.
		p.curMax = p.cfg.UncoreMinRatio
		return p.settle(), Ready, nil
	}
	p.curMax = start - p.cfg.UncoreStep
	if p.curMax < p.cfg.UncoreMinRatio {
		p.curMax = p.cfg.UncoreMinRatio
	}
	return p.freqs(), Continue, nil
}

// imcStep evaluates the signature measured at the current uncore window
// and decides to revert, settle or keep lowering.
func (p *eufs) imcStep(in Inputs) (NodeFreqs, State, error) {
	sig := in.Sig

	// Application phase change during the search (§V-B): restart from
	// CPU frequency selection.
	if p.phaseChanged(sig) {
		p.Reset()
		def := p.base.Default()
		return def, Continue, nil
	}

	// Degradation beyond the uncore threshold: revert the last step.
	extraCPI := p.refCPI * p.cfg.UncPolicyTh
	extraGBs := p.refGBs * p.cfg.UncPolicyTh
	if sig.CPI > p.refCPI+extraCPI || sig.GBs < p.refGBs-extraGBs {
		p.curMax += p.cfg.UncoreStep
		if p.curMax > p.cfg.UncoreMaxRatio {
			p.curMax = p.cfg.UncoreMaxRatio
		}
		return p.settle(), Ready, nil
	}

	// Floor reached: accept.
	if p.curMax <= p.cfg.UncoreMinRatio {
		return p.settle(), Ready, nil
	}

	// Keep lowering.
	p.curMax -= p.cfg.UncoreStep
	if p.curMax < p.cfg.UncoreMinRatio {
		p.curMax = p.cfg.UncoreMinRatio
	}
	return p.freqs(), Continue, nil
}

// phaseChanged detects signature changes larger than the uncore search
// itself could cause.
func (p *eufs) phaseChanged(sig metrics.Signature) bool {
	ref := metrics.Signature{CPI: p.refCPI, GBs: p.refGBs}
	// CPI *decreases* and GB/s *increases* cannot come from lowering
	// the uncore; degradations are judged by the uncore threshold
	// first, so only treat large shifts as phase changes.
	return metrics.Changed(ref, sig, p.cfg.SigChangeTh)
}

// freqs is the in-progress frequency request: CPU selection plus the
// narrowed uncore window. Only the maximum moves; the minimum stays at
// the hardware minimum (§V-B item 3) unless the PinBothLimits ablation
// is active.
func (p *eufs) freqs() NodeFreqs {
	minR := p.cfg.UncoreMinRatio
	if p.cfg.PinBothLimits {
		minR = p.curMax
	}
	return NodeFreqs{
		CPUPstate:   p.cpuSel,
		SetIMC:      true,
		IMCMaxRatio: p.curMax,
		IMCMinRatio: minR,
	}
}

// settle freezes the final selection.
func (p *eufs) settle() NodeFreqs {
	p.lastDone = p.freqs()
	return p.lastDone
}

// LastPrediction forwards the base policy's prediction view, so the
// eUFS wrapper stays transparent to telemetry and decision logging.
func (p *eufs) LastPrediction() (PredictionView, bool) {
	if pr, ok := p.base.(Predictor); ok {
		return pr.LastPrediction()
	}
	return PredictionView{}, false
}

// Validate reports whether the stable behaviour still matches the
// reference within the signature-change threshold.
func (p *eufs) Validate(in Inputs) bool {
	if !p.started {
		return p.base.Validate(in)
	}
	return !p.phaseChanged(in.Sig)
}

// Default restores the base default CPU pstate and re-opens the full
// hardware uncore window.
func (p *eufs) Default() NodeFreqs {
	def := p.base.Default()
	def.SetIMC = true
	def.IMCMaxRatio = p.cfg.UncoreMaxRatio
	def.IMCMinRatio = p.cfg.UncoreMinRatio
	return def
}

func (p *eufs) Reset() {
	p.base.Reset()
	p.stage = stCPUFreqSel
	p.cpuSel = p.cfg.DefaultPstate
	p.refCPI, p.refGBs = 0, 0
	p.curMax = 0
	p.started = false
}

func clamp(v, lo, hi uint64) uint64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
