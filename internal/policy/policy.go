// Package policy implements EAR's energy-policy API and the policies the
// paper evaluates.
//
// Policies are plugins: they are registered by name in a global registry
// (mirroring EAR's dlopen-based plugin mechanism) and constructed from a
// Config. The EAR Library drives them through the same three entry
// points as the paper's Code 1: apply on a new signature (node_policy),
// validate once the policy reported READY, and default frequencies when
// validation fails (set_def).
//
// A policy returns Ready when it has settled on an operating point and
// Continue when it wants to be re-applied on the next signature — the
// mechanism that makes the explicit-UFS extension iterative.
package policy

import (
	"fmt"
	"sort"
	"sync"

	"goear/internal/metrics"
	"goear/internal/model"
)

// State is the policy return state of the paper's state diagram.
type State int

// Policy states.
const (
	// Ready: the policy settled; EARL moves to validation/stable.
	Ready State = iota
	// Continue: re-apply the policy on the next signature.
	Continue
)

// String names the state.
func (s State) String() string {
	switch s {
	case Ready:
		return "READY"
	case Continue:
		return "CONTINUE"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// NodeFreqs is the frequency selection a policy hands back to EARL
// (the paper's node_freqs_t).
type NodeFreqs struct {
	// CPUPstate is the requested CPU pstate.
	CPUPstate int
	// SetIMC indicates the IMC window below should be programmed; when
	// false EARL leaves MSR 0x620 alone (hardware UFS stays in charge).
	SetIMC      bool
	IMCMaxRatio uint64
	IMCMinRatio uint64
}

// Inputs is what EARL passes on each invocation.
type Inputs struct {
	// Sig is the freshly computed signature.
	Sig metrics.Signature
	// CurrentPstate is the pstate the node currently requests.
	CurrentPstate int
	// CurrentUncoreRatio is the operating uncore ratio read from MSR
	// 0x621 — the hardware's current selection, which the HW-guided
	// search uses as its starting point.
	CurrentUncoreRatio uint64
	// TimeGuided is true when no loop structure was detected and the
	// signature window is the iteration (non-MPI applications).
	TimeGuided bool
}

// PredictionView is a policy's latest model projection, exposed for
// telemetry and decision logging: the predicted iteration time and
// power at the chosen operating point, plus the same projection onto
// the policy's default pstate (the reference the penalty budget is
// relative to). Ref fields are zero when no reference applies (e.g.
// busy-wait phases).
type PredictionView struct {
	TimeSec    float64
	PowerW     float64
	RefTimeSec float64
	RefPowerW  float64
}

// Predictor is optionally implemented by policies that can report the
// prediction behind their last Apply.
type Predictor interface {
	// LastPrediction returns the view and whether a prediction exists.
	LastPrediction() (PredictionView, bool)
}

// Policy is the plugin interface (the paper's policy_operations).
type Policy interface {
	// Name returns the registered policy name.
	Name() string
	// Apply implements node_policy: examine the signature, decide
	// frequencies, and report whether the policy settled.
	Apply(in Inputs) (NodeFreqs, State, error)
	// Validate checks, on a signature measured *after* the selection
	// was applied, that the behaviour matches the policy's
	// expectations.
	Validate(in Inputs) bool
	// Default returns the safe frequencies EARL applies when
	// validation fails (set_def).
	Default() NodeFreqs
	// Reset clears internal state so the policy can be re-applied from
	// scratch (used on application phase changes).
	Reset()
}

// Config parameterises policy construction.
type Config struct {
	// Model is the trained energy model used for predictions.
	Model *model.Model
	// CPUPolicyTh is the allowed relative time penalty for the CPU
	// frequency selection (the paper uses 0.03 and 0.05).
	CPUPolicyTh float64
	// UncPolicyTh is the additional penalty allowed for the uncore
	// selection, applied to CPI and GB/s (the paper uses 0.00-0.03).
	UncPolicyTh float64
	// HWGuided starts the IMC search from the hardware-selected uncore
	// frequency instead of the maximum (the paper's default strategy).
	HWGuided bool
	// UseAVX512Model selects the paper's extended model; disabling it
	// reproduces the pre-extension behaviour (ablation A2).
	UseAVX512Model bool
	// DefaultPstate is the policy's default CPU pstate (nominal = 1
	// for min_energy_to_solution).
	DefaultPstate int
	// UncoreMinRatio/UncoreMaxRatio is the hardware uncore window.
	UncoreMinRatio uint64
	UncoreMaxRatio uint64
	// SigChangeTh is the relative signature variation treated as an
	// application phase change (the paper accepts 15 %).
	SigChangeTh float64
	// UncoreStep is the search step in ratio units (1 = 0.1 GHz).
	UncoreStep uint64
	// PinBothLimits sets min=max during the IMC search instead of the
	// paper's chosen move-max-only strategy (§V-B item 3); kept as an
	// ablation of that design decision.
	PinBothLimits bool
	// BusyWaitPstateDrop is how many pstates below default the policy
	// selects for busy-waiting (GPU offload) phases.
	BusyWaitPstateDrop int
	// MinTimeMinGain is min_time_to_solution's required relative time
	// gain per frequency step.
	MinTimeMinGain float64
}

// Defaults fills unset fields with the paper's defaults.
func (c Config) Defaults() Config {
	if c.CPUPolicyTh == 0 {
		c.CPUPolicyTh = 0.05
	}
	if c.UncPolicyTh == 0 {
		c.UncPolicyTh = 0.02
	}
	if c.DefaultPstate == 0 {
		c.DefaultPstate = 1
	}
	if c.SigChangeTh == 0 {
		c.SigChangeTh = 0.15
	}
	if c.UncoreStep == 0 {
		c.UncoreStep = 1
	}
	if c.BusyWaitPstateDrop == 0 {
		c.BusyWaitPstateDrop = 2
	}
	if c.MinTimeMinGain == 0 {
		// Just below one 100 MHz step's ideal gain at nominal (4.2%),
		// so frequency-sensitive code climbs all the way.
		c.MinTimeMinGain = 0.03
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Model == nil:
		return fmt.Errorf("policy: missing energy model")
	case c.CPUPolicyTh < 0 || c.CPUPolicyTh > 1:
		return fmt.Errorf("policy: cpu_policy_th %g outside [0,1]", c.CPUPolicyTh)
	case c.UncPolicyTh < 0 || c.UncPolicyTh > 1:
		return fmt.Errorf("policy: unc_policy_th %g outside [0,1]", c.UncPolicyTh)
	case c.DefaultPstate < 0 || c.DefaultPstate >= c.Model.PstateCount():
		return fmt.Errorf("policy: default pstate %d outside model", c.DefaultPstate)
	case c.UncoreMinRatio == 0 || c.UncoreMinRatio > c.UncoreMaxRatio:
		return fmt.Errorf("policy: uncore window [%d,%d] invalid", c.UncoreMinRatio, c.UncoreMaxRatio)
	case c.SigChangeTh <= 0:
		return fmt.Errorf("policy: signature change threshold must be positive")
	case c.UncoreStep == 0:
		return fmt.Errorf("policy: uncore step must be positive")
	}
	return c.Model.Validate()
}

// Factory constructs a policy from a config.
type Factory func(Config) (Policy, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a policy factory under name; registering a duplicate
// name panics (programming error at init time).
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New constructs the named policy.
func New(name string, cfg Config) (Policy, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (have %v)", name, Names())
	}
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p, err := f(cfg)
	if err != nil {
		return nil, err
	}
	// With telemetry enabled, every constructed policy is wrapped in the
	// counting decorator (instrument handles resolve here, at setup
	// time, never inside Apply/Validate).
	return maybeInstrument(p), nil
}

// Names lists registered policies, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Registered policy names.
const (
	Monitoring    = "monitoring"
	MinEnergy     = "min_energy"
	MinEnergyEUFS = "min_energy_eufs"
	MinTime       = "min_time"
	MinTimeEUFS   = "min_time_eufs"
)

// IsBusyWaiting classifies a signature as a busy-wait (accelerator
// offload) phase: negligible main-memory traffic with low CPI, the
// pattern EAR detects for CUDA kernels whose host core only spins.
func IsBusyWaiting(sig metrics.Signature) bool {
	return metrics.Classify(sig) == metrics.BusyWaiting
}
