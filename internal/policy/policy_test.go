package policy

import (
	"sync"
	"testing"

	"goear/internal/cpu"
	"goear/internal/mem"
	"goear/internal/metrics"
	"goear/internal/model"
	"goear/internal/perf"
	"goear/internal/power"
)

var (
	testModelOnce sync.Once
	testModel     *model.Model
)

func sd530Model(t *testing.T) *model.Model {
	t.Helper()
	testModelOnce.Do(func() {
		m, err := model.TrainForCPU(
			perf.Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()},
			power.SD530Coeffs())
		if err != nil {
			t.Fatalf("training model: %v", err)
		}
		testModel = m
	})
	return testModel
}

func testConfig(t *testing.T) Config {
	return Config{
		Model:          sd530Model(t),
		CPUPolicyTh:    0.05,
		UncPolicyTh:    0.02,
		HWGuided:       true,
		UseAVX512Model: true,
		DefaultPstate:  1,
		UncoreMinRatio: 12,
		UncoreMaxRatio: 24,
		SigChangeTh:    0.15,
	}.Defaults()
}

// Signatures modelled on the paper's workloads.
func cpuBoundSig() metrics.Signature {
	return metrics.Signature{
		TimeSec: 10, IterTimeSec: 1.2, DCPowerW: 332,
		CPI: 0.39, TPI: 0.0018, GBs: 28, AvgCPUGHz: 2.38, AvgIMCGHz: 2.39,
		Iterations: 8,
	}
}

func memBoundSig() metrics.Signature {
	return metrics.Signature{
		TimeSec: 10, IterTimeSec: 1.4, DCPowerW: 340,
		CPI: 3.13, TPI: 0.0902, GBs: 177, AvgCPUGHz: 2.38, AvgIMCGHz: 2.39,
		Iterations: 7,
	}
}

func avxSig() metrics.Signature {
	return metrics.Signature{
		TimeSec: 10, IterTimeSec: 1.3, DCPowerW: 369,
		CPI: 0.45, TPI: 0.0078, GBs: 98, VPI: 1.0, AvgCPUGHz: 2.19, AvgIMCGHz: 1.98,
		Iterations: 7,
	}
}

func busyWaitSig() metrics.Signature {
	return metrics.Signature{
		TimeSec: 10, IterTimeSec: 10, DCPowerW: 305,
		CPI: 0.49, TPI: 0.0003, GBs: 0.09, AvgCPUGHz: 2.44, AvgIMCGHz: 2.39,
	}
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{MinEnergy, MinEnergyEUFS, MinTime, MinTimeEUFS, Monitoring}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("policy %q not registered (have %v)", w, names)
		}
	}
}

func TestNewUnknownPolicy(t *testing.T) {
	if _, err := New("nope", testConfig(t)); err == nil {
		t.Error("expected error for unknown policy")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate registration")
		}
	}()
	Register(Monitoring, func(Config) (Policy, error) { return nil, nil })
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(t)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Model = nil },
		func(c *Config) { c.CPUPolicyTh = -0.1 },
		func(c *Config) { c.CPUPolicyTh = 1.5 },
		func(c *Config) { c.UncPolicyTh = -0.1 },
		func(c *Config) { c.DefaultPstate = -1 },
		func(c *Config) { c.DefaultPstate = 99 },
		func(c *Config) { c.UncoreMinRatio = 0 },
		func(c *Config) { c.UncoreMinRatio = 30 },
		func(c *Config) { c.SigChangeTh = -1 },
	}
	for i, mut := range muts {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Model: sd530Model(t), UncoreMinRatio: 12, UncoreMaxRatio: 24}.Defaults()
	if c.CPUPolicyTh != 0.05 || c.UncPolicyTh != 0.02 || c.DefaultPstate != 1 ||
		c.SigChangeTh != 0.15 || c.UncoreStep != 1 || c.BusyWaitPstateDrop != 2 {
		t.Errorf("defaults wrong: %+v", c)
	}
}

func TestMonitoringIsNoOp(t *testing.T) {
	p, err := New(Monitoring, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{Sig: cpuBoundSig(), CurrentPstate: 1, CurrentUncoreRatio: 24}
	nf, st, err := p.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if st != Ready || nf.CPUPstate != 1 || nf.SetIMC {
		t.Errorf("monitoring changed something: %+v state %v", nf, st)
	}
	if !p.Validate(in) {
		t.Error("monitoring must always validate")
	}
}

func TestMinEnergyKeepsCPUBoundAtNominal(t *testing.T) {
	// The paper: BT-MZ's CPU frequency is not reduced because a lower
	// frequency costs more energy (time penalty outweighs power).
	p, err := New(MinEnergy, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	nf, st, err := p.Apply(Inputs{Sig: cpuBoundSig(), CurrentPstate: 1, CurrentUncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	if st != Ready {
		t.Errorf("state = %v, want READY", st)
	}
	if nf.CPUPstate != 1 {
		t.Errorf("pstate = %d, want 1 (nominal)", nf.CPUPstate)
	}
	if nf.SetIMC {
		t.Error("basic min_energy must not touch the IMC")
	}
}

func TestMinEnergyReducesMemBound(t *testing.T) {
	// HPCG-like: memory bound, time insensitive to CPU frequency, so
	// lower pstates win on energy (the paper reports ~1.75 GHz).
	p, err := New(MinEnergy, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	nf, _, err := p.Apply(Inputs{Sig: memBoundSig(), CurrentPstate: 1, CurrentUncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	if nf.CPUPstate < 3 {
		t.Errorf("pstate = %d, want >= 3 (substantial reduction)", nf.CPUPstate)
	}
	f := sd530Model(t).FreqGHz[nf.CPUPstate]
	if f < 1.3 || f > 2.2 {
		t.Errorf("selected %v GHz, want within a plausible HPCG band", f)
	}
}

func TestMinEnergyAVX512SelectsLicencePstate(t *testing.T) {
	// DGEMM: VPI=1 means pstates 1..3 predict identical time, so the
	// licence pstate (3, 2.2 GHz) wins on energy.
	p, err := New(MinEnergy, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	nf, _, err := p.Apply(Inputs{Sig: avxSig(), CurrentPstate: 1, CurrentUncoreRatio: 20})
	if err != nil {
		t.Fatal(err)
	}
	if nf.CPUPstate != 3 {
		t.Errorf("pstate = %d, want 3 (AVX512 licence)", nf.CPUPstate)
	}
}

func TestMinEnergyAVX512AblationWithoutModel(t *testing.T) {
	// Without the AVX512 model the policy believes higher frequency
	// helps and stays at the default pstate (ablation A2).
	cfg := testConfig(t)
	cfg.UseAVX512Model = false
	p, err := New(MinEnergy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nf, _, err := p.Apply(Inputs{Sig: avxSig(), CurrentPstate: 1, CurrentUncoreRatio: 20})
	if err != nil {
		t.Fatal(err)
	}
	if nf.CPUPstate >= 3 {
		t.Errorf("pstate = %d: default model should not find the licence pstate", nf.CPUPstate)
	}
}

func TestMinEnergyBusyWaitDrop(t *testing.T) {
	p, err := New(MinEnergy, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	nf, _, err := p.Apply(Inputs{Sig: busyWaitSig(), CurrentPstate: 1, CurrentUncoreRatio: 24, TimeGuided: true})
	if err != nil {
		t.Fatal(err)
	}
	if nf.CPUPstate != 3 {
		t.Errorf("pstate = %d, want 3 (default + 2 busy-wait drop)", nf.CPUPstate)
	}
}

func TestMinEnergyZeroThresholdStaysAtDefault(t *testing.T) {
	cfg := testConfig(t)
	cfg.CPUPolicyTh = 1e-9 // effectively zero tolerance
	p, err := New(MinEnergy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sig := range []metrics.Signature{cpuBoundSig(), memBoundSig()} {
		nf, _, err := p.Apply(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24})
		if err != nil {
			t.Fatal(err)
		}
		// Only selections with ~zero predicted penalty are allowed;
		// the memory-bound case may still find one, but it must never
		// pick a pstate whose prediction violates the limit. We check
		// the invariant through validation instead of exact choice.
		if nf.CPUPstate < 1 {
			t.Errorf("pstate = %d below default", nf.CPUPstate)
		}
	}
}

func TestMinEnergyValidate(t *testing.T) {
	p, err := New(MinEnergy, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := memBoundSig()
	if _, _, err := p.Apply(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24}); err != nil {
		t.Fatal(err)
	}
	// A post-selection signature consistent with the prediction
	// (memory-bound CPI shrinks in cycles at lower frequency) validates.
	after := sig
	after.CPI = sig.CPI * 0.7
	if !p.Validate(Inputs{Sig: after, CurrentPstate: 5, CurrentUncoreRatio: 24}) {
		t.Error("validation failed for matching signature")
	}
	// A wildly worse CPI fails validation.
	worse := sig
	worse.CPI = sig.CPI * 3
	if p.Validate(Inputs{Sig: worse, CurrentPstate: 5, CurrentUncoreRatio: 24}) {
		t.Error("validation passed for 3x CPI")
	}
}

func TestMinEnergyInvalidSignature(t *testing.T) {
	p, err := New(MinEnergy, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Apply(Inputs{Sig: metrics.Signature{}, CurrentPstate: 1}); err == nil {
		t.Error("expected error for invalid signature")
	}
}

func TestEUFSDirectPathForDefaultCPU(t *testing.T) {
	// CPU-bound: CPU selection keeps the default pstate, so the state
	// machine must skip COMP_REF and issue the first IMC step at once,
	// starting from the hardware-selected ratio (HW-guided).
	p, err := New(MinEnergyEUFS, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{Sig: cpuBoundSig(), CurrentPstate: 1, CurrentUncoreRatio: 24}
	nf, st, err := p.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue {
		t.Fatalf("state = %v, want CONTINUE (search started)", st)
	}
	if !nf.SetIMC || nf.IMCMaxRatio != 23 {
		t.Errorf("first step = %+v, want IMC max 23 (HW 24 minus one step)", nf)
	}
	if nf.IMCMinRatio != 12 {
		t.Errorf("IMC min = %d, want hardware minimum 12 (only max moves)", nf.IMCMinRatio)
	}
	if nf.CPUPstate != 1 {
		t.Errorf("CPU pstate = %d, want 1", nf.CPUPstate)
	}
}

func TestEUFSFullSearchToViolationAndRevert(t *testing.T) {
	p, err := New(MinEnergyEUFS, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := cpuBoundSig()
	in := Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24}
	nf, st, err := p.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	// Lower without degradation for 4 more steps.
	cur := nf.IMCMaxRatio
	for i := 0; i < 4; i++ {
		in.CurrentUncoreRatio = cur
		nf, st, err = p.Apply(in) // same signature: no degradation
		if err != nil {
			t.Fatal(err)
		}
		if st != Continue {
			t.Fatalf("step %d: state %v, want CONTINUE", i, st)
		}
		if nf.IMCMaxRatio != cur-1 {
			t.Fatalf("step %d: max = %d, want %d", i, nf.IMCMaxRatio, cur-1)
		}
		cur = nf.IMCMaxRatio
	}
	// Now the signature degrades beyond 2%: revert and settle.
	degraded := sig
	degraded.CPI = sig.CPI * 1.05
	in.Sig = degraded
	in.CurrentUncoreRatio = cur
	nf, st, err = p.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if st != Ready {
		t.Fatalf("state = %v, want READY after violation", st)
	}
	if nf.IMCMaxRatio != cur+1 {
		t.Errorf("reverted max = %d, want %d", nf.IMCMaxRatio, cur+1)
	}
}

func TestEUFSGBsViolationAlsoReverts(t *testing.T) {
	p, err := New(MinEnergyEUFS, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := memBoundSigAtNominalSelection(t, p)
	// One good step happened; now degrade bandwidth by 5% (> 2% th).
	degraded := sig
	degraded.GBs = sig.GBs * 0.95
	nf, st, err := p.Apply(Inputs{Sig: degraded, CurrentPstate: 5, CurrentUncoreRatio: 23})
	if err != nil {
		t.Fatal(err)
	}
	if st != Ready {
		t.Errorf("state = %v, want READY", st)
	}
	if !nf.SetIMC {
		t.Error("settled freqs must pin the IMC window")
	}
}

// memBoundSigAtNominalSelection drives an eUFS policy through CPU
// selection and COMP_REF with a memory-bound signature, returning the
// reference signature in effect.
func memBoundSigAtNominalSelection(t *testing.T, p Policy) metrics.Signature {
	t.Helper()
	sig := memBoundSig()
	in := Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24}
	_, st, err := p.Apply(in) // CPU selection (reduces pstate) -> COMP_REF
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue {
		t.Fatalf("after CPU selection: state %v, want CONTINUE", st)
	}
	// Signature at the new CPU frequency (slightly higher CPI).
	ref := sig
	ref.CPI = sig.CPI * 1.01
	_, st, err = p.Apply(Inputs{Sig: ref, CurrentPstate: 5, CurrentUncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue {
		t.Fatalf("after COMP_REF: state %v, want CONTINUE", st)
	}
	return ref
}

func TestEUFSFloorSettles(t *testing.T) {
	p, err := New(MinEnergyEUFS, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := cpuBoundSig()
	in := Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24}
	var st State
	var nf NodeFreqs
	nf, st, err = p.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	// Never degrade: the search must hit the hardware floor and settle.
	for i := 0; i < 20 && st == Continue; i++ {
		in.CurrentUncoreRatio = nf.IMCMaxRatio
		nf, st, err = p.Apply(in)
		if err != nil {
			t.Fatal(err)
		}
	}
	if st != Ready {
		t.Fatalf("never settled: state %v", st)
	}
	if nf.IMCMaxRatio != 12 {
		t.Errorf("floor max = %d, want 12", nf.IMCMaxRatio)
	}
}

func TestEUFSNotGuidedStartsFromMax(t *testing.T) {
	cfg := testConfig(t)
	cfg.HWGuided = false
	p, err := New(MinEnergyEUFS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hardware currently sits at 18, but the not-guided search must
	// start from the hardware maximum (24 -> first step 23).
	nf, _, err := p.Apply(Inputs{Sig: cpuBoundSig(), CurrentPstate: 1, CurrentUncoreRatio: 18})
	if err != nil {
		t.Fatal(err)
	}
	if nf.IMCMaxRatio != 23 {
		t.Errorf("first step max = %d, want 23", nf.IMCMaxRatio)
	}
}

func TestEUFSGuidedStartsFromHWSelection(t *testing.T) {
	p, err := New(MinEnergyEUFS, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	nf, _, err := p.Apply(Inputs{Sig: cpuBoundSig(), CurrentPstate: 1, CurrentUncoreRatio: 18})
	if err != nil {
		t.Fatal(err)
	}
	if nf.IMCMaxRatio != 17 {
		t.Errorf("first step max = %d, want 17 (HW 18 minus one)", nf.IMCMaxRatio)
	}
}

func TestEUFSPhaseChangeRestartsCPUSelection(t *testing.T) {
	p, err := New(MinEnergyEUFS, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := cpuBoundSig()
	in := Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24}
	nf, _, err := p.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-search the application changes phase entirely.
	other := memBoundSig()
	nf2, st, err := p.Apply(Inputs{Sig: other, CurrentPstate: 1, CurrentUncoreRatio: nf.IMCMaxRatio})
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue {
		t.Errorf("state = %v, want CONTINUE (restart)", st)
	}
	if nf2.CPUPstate != 1 {
		t.Errorf("restart freqs = %+v, want default pstate", nf2)
	}
	// The next Apply must run CPU selection again (memory bound ->
	// reduced pstate).
	nf3, _, err := p.Apply(Inputs{Sig: other, CurrentPstate: 1, CurrentUncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	if nf3.CPUPstate < 3 {
		t.Errorf("after restart pstate = %d, want memory-bound reduction", nf3.CPUPstate)
	}
}

func TestEUFSValidateDetectsChange(t *testing.T) {
	p, err := New(MinEnergyEUFS, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := cpuBoundSig()
	in := Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 24}
	if _, _, err := p.Apply(in); err != nil {
		t.Fatal(err)
	}
	if !p.Validate(in) {
		t.Error("unchanged signature must validate")
	}
	changed := sig
	changed.CPI = sig.CPI * 1.3
	if p.Validate(Inputs{Sig: changed, CurrentPstate: 1, CurrentUncoreRatio: 23}) {
		t.Error("30% CPI change must fail validation")
	}
}

func TestEUFSDefaultRestoresWindow(t *testing.T) {
	p, err := New(MinEnergyEUFS, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	def := p.Default()
	if !def.SetIMC || def.IMCMaxRatio != 24 || def.IMCMinRatio != 12 {
		t.Errorf("default = %+v, want full uncore window", def)
	}
	if def.CPUPstate != 1 {
		t.Errorf("default pstate = %d, want 1", def.CPUPstate)
	}
}

func TestEUFSReset(t *testing.T) {
	p, err := New(MinEnergyEUFS, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{Sig: cpuBoundSig(), CurrentPstate: 1, CurrentUncoreRatio: 24}
	if _, _, err := p.Apply(in); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	// After reset the first Apply runs CPU selection again.
	nf, st, err := p.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue || nf.IMCMaxRatio != 23 {
		t.Errorf("after reset: %+v state %v, want fresh first step", nf, st)
	}
}

func TestMinTimeClimbsForCPUBound(t *testing.T) {
	p, err := New(MinTime, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// CPU-bound benefits from every step: must climb to nominal.
	nf, st, err := p.Apply(Inputs{Sig: cpuBoundSig(), CurrentPstate: 5, CurrentUncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	if st != Ready {
		t.Errorf("state = %v, want READY", st)
	}
	if nf.CPUPstate != 1 {
		t.Errorf("pstate = %d, want 1 (nominal)", nf.CPUPstate)
	}
}

func TestMinTimeStaysLowForMemBound(t *testing.T) {
	p, err := New(MinTime, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	nf, _, err := p.Apply(Inputs{Sig: memBoundSig(), CurrentPstate: 5, CurrentUncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	if nf.CPUPstate <= 1 {
		t.Errorf("pstate = %d: memory-bound must not climb to nominal", nf.CPUPstate)
	}
}

func TestMinTimeEUFSComposes(t *testing.T) {
	p, err := New(MinTimeEUFS, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// CPU-bound: min_time picks nominal (the default for the eUFS
	// direct path is pstate 1? No: min_time's default is lower, so the
	// climb to nominal goes through COMP_REF).
	in := Inputs{Sig: cpuBoundSig(), CurrentPstate: 5, CurrentUncoreRatio: 24}
	nf, st, err := p.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue {
		t.Fatalf("state = %v, want CONTINUE", st)
	}
	if nf.CPUPstate != 1 {
		t.Fatalf("pstate = %d, want 1", nf.CPUPstate)
	}
	// COMP_REF at the new frequency, then search starts.
	nf, st, err = p.Apply(Inputs{Sig: cpuBoundSig(), CurrentPstate: 1, CurrentUncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue || !nf.SetIMC {
		t.Errorf("after COMP_REF: %+v state %v, want IMC search", nf, st)
	}
}

func TestIsBusyWaiting(t *testing.T) {
	if !IsBusyWaiting(busyWaitSig()) {
		t.Error("CUDA busy-wait signature not classified")
	}
	if IsBusyWaiting(cpuBoundSig()) || IsBusyWaiting(memBoundSig()) || IsBusyWaiting(avxSig()) {
		t.Error("regular signatures misclassified as busy-wait")
	}
}

func TestStateAndStageStrings(t *testing.T) {
	if Ready.String() != "READY" || Continue.String() != "CONTINUE" {
		t.Error("state names wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state must still format")
	}
	if stCPUFreqSel.String() != "CPU_FREQ_SEL" || stCompRef.String() != "COMP_REF" ||
		stIMCFreqSel.String() != "IMC_FREQ_SEL" {
		t.Error("stage names wrong")
	}
	if eufsStage(9).String() == "" {
		t.Error("unknown stage must still format")
	}
}

func TestMinTimeEUFSRaisesUncoreForMemBound(t *testing.T) {
	// Performance-first variant (§VIII): a memory-bound phase pins the
	// uncore window wide open instead of searching downward.
	p, err := New(MinTimeEUFS, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := memBoundSig()
	// CPU selection first (min_time stays low for memory-bound, which
	// is not the default pstate, so COMP_REF follows).
	_, st, err := p.Apply(Inputs{Sig: sig, CurrentPstate: 5, CurrentUncoreRatio: 18})
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue {
		t.Fatalf("state = %v, want CONTINUE", st)
	}
	// COMP_REF with a memory-bound signature: pin high and settle.
	nf, st, err := p.Apply(Inputs{Sig: sig, CurrentPstate: 5, CurrentUncoreRatio: 18})
	if err != nil {
		t.Fatal(err)
	}
	if st != Ready {
		t.Fatalf("state = %v, want READY (pinned high)", st)
	}
	if !nf.SetIMC || nf.IMCMaxRatio != 24 || nf.IMCMinRatio != 24 {
		t.Errorf("freqs = %+v, want window pinned at the maximum", nf)
	}
}

func TestMinTimeEUFSStillLowersForCPUBound(t *testing.T) {
	p, err := New(MinTimeEUFS, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := cpuBoundSig()
	// min_time climbs the CPU-bound phase to the default pstate, so the
	// direct path starts the downward search immediately.
	nf, st, err := p.Apply(Inputs{Sig: sig, CurrentPstate: 5, CurrentUncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue || !nf.SetIMC || nf.IMCMaxRatio != 23 {
		t.Fatalf("first step = %+v %v, want downward search from 24", nf, st)
	}
	nf, st, err = p.Apply(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 23})
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue || nf.IMCMaxRatio != 22 {
		t.Errorf("CPU-bound phase must keep searching downward: %+v %v", nf, st)
	}
}

func TestMinEnergyEUFSDoesNotRaise(t *testing.T) {
	// min_energy keeps the paper's published behaviour: memory-bound
	// phases search downward from the HW point (and revert quickly).
	p, err := New(MinEnergyEUFS, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sig := memBoundSig()
	_, _, err = p.Apply(Inputs{Sig: sig, CurrentPstate: 1, CurrentUncoreRatio: 18})
	if err != nil {
		t.Fatal(err)
	}
	ref := sig
	ref.CPI = sig.CPI * 1.01
	nf, st, err := p.Apply(Inputs{Sig: ref, CurrentPstate: 5, CurrentUncoreRatio: 18})
	if err != nil {
		t.Fatal(err)
	}
	if st != Continue || nf.IMCMaxRatio != 17 {
		t.Errorf("min_energy must search downward from 18: %+v %v", nf, st)
	}
}
