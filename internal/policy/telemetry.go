package policy

import (
	"sync/atomic"

	"goear/internal/telemetry"
)

// Metric names (package-level constants per the goearvet telemetry
// analyzer).
const (
	metricPolicyDecisions   = "goear_policy_decisions_total"
	metricPolicyValidations = "goear_policy_validations_total"
	metricPolicySaving      = "goear_policy_predicted_saving_pct"
)

// savingBounds buckets predicted energy savings in percent. Negative
// (prediction worse than reference) lands in the first bucket.
var savingBounds = []float64{0, 1, 2, 5, 10, 15, 20, 30, 50}

// policyTel holds the label families; per-policy handles are resolved
// when a policy is constructed (setup time), so Apply/Validate touch
// only pre-resolved counters.
type policyTel struct {
	decisions   *telemetry.CounterVec
	validations *telemetry.CounterVec
	saving      *telemetry.HistogramVec
}

var tel atomic.Pointer[policyTel]

func init() {
	telemetry.OnEnable(func(s *telemetry.Set) {
		if s == nil {
			tel.Store(nil)
			return
		}
		r := s.Registry
		t := &policyTel{
			decisions:   r.CounterVec(metricPolicyDecisions, "policy Apply results by settling state", "policy", "state"),
			validations: r.CounterVec(metricPolicyValidations, "policy Validate results", "policy", "result"),
			saving:      r.HistogramVec(metricPolicySaving, "predicted energy saving vs default-pstate reference, percent", savingBounds, "policy"),
		}
		// Pre-register the label sets of the built-in policies so a
		// scrape lists their families even before the first decision.
		for _, name := range []string{Monitoring, MinEnergy, MinEnergyEUFS, MinTime, MinTimeEUFS} {
			t.decisions.With(name, "ready")
			t.decisions.With(name, "continue")
			t.validations.With(name, "ok")
			t.validations.With(name, "fail")
			t.saving.With(name)
		}
		tel.Store(t)
	})
}

// instrumented decorates a policy with decision counters and the
// predicted-saving histogram. It forwards Predictor so EARL's decision
// trace still sees the underlying prediction.
type instrumented struct {
	Policy
	ready   *telemetry.Counter
	cont    *telemetry.Counter
	valOK   *telemetry.Counter
	valFail *telemetry.Counter
	saving  *telemetry.Histogram
}

// maybeInstrument wraps p when global telemetry is enabled.
func maybeInstrument(p Policy) Policy {
	t := tel.Load()
	if t == nil {
		return p
	}
	name := p.Name()
	return &instrumented{
		Policy:  p,
		ready:   t.decisions.With(name, "ready"),
		cont:    t.decisions.With(name, "continue"),
		valOK:   t.validations.With(name, "ok"),
		valFail: t.validations.With(name, "fail"),
		saving:  t.saving.With(name),
	}
}

func (p *instrumented) Apply(in Inputs) (NodeFreqs, State, error) {
	nf, st, err := p.Policy.Apply(in)
	if err != nil {
		return nf, st, err
	}
	if st == Ready {
		p.ready.Inc()
		if pr, ok := p.Policy.(Predictor); ok {
			if v, have := pr.LastPrediction(); have && v.RefTimeSec > 0 && v.RefPowerW > 0 {
				refE := v.RefTimeSec * v.RefPowerW
				p.saving.Observe((refE - v.TimeSec*v.PowerW) / refE * 100)
			}
		}
	} else {
		p.cont.Inc()
	}
	return nf, st, err
}

func (p *instrumented) Validate(in Inputs) bool {
	ok := p.Policy.Validate(in)
	if ok {
		p.valOK.Inc()
	} else {
		p.valFail.Inc()
	}
	return ok
}

// LastPrediction forwards the decorated policy's prediction view.
func (p *instrumented) LastPrediction() (PredictionView, bool) {
	if pr, ok := p.Policy.(Predictor); ok {
		return pr.LastPrediction()
	}
	return PredictionView{}, false
}
