package policy

import (
	"fmt"

	"goear/internal/model"
)

func init() {
	Register(MinTime, func(cfg Config) (Policy, error) {
		return newMinTime(cfg), nil
	})
}

// minTimeDefaultDrop is how many pstates below nominal min_time's
// default frequency sits: the policy starts from a moderate frequency
// and *raises* it while the application proves it benefits.
const minTimeDefaultDrop = 4

// minTime is min_time_to_solution: starting from its (lower) default
// frequency, it raises the CPU frequency one pstate at a time while the
// predicted time gain per step stays above MinTimeMinGain — applications
// that do not scale with frequency stay low, frequency-sensitive ones
// climb to nominal. The paper lists this policy's eUFS integration as
// ongoing work; it is provided here with the same uncore stage as
// min_energy (via the shared eufs wrapper).
type minTime struct {
	cfg Config

	// tbl is the per-signature-window prediction table; its buffer is
	// reused across windows.
	tbl model.Table

	defPst    int
	selected  int
	havePred  bool
	predCPI   float64
	predTime  float64
	predPower float64
	refTime   float64 // projection onto the policy's default pstate
	refPower  float64
}

func newMinTime(cfg Config) *minTime {
	def := cfg.DefaultPstate + minTimeDefaultDrop
	if max := cfg.Model.PstateCount() - 1; def > max {
		def = max
	}
	return &minTime{cfg: cfg, defPst: def, selected: def}
}

func (p *minTime) Name() string { return MinTime }

func (p *minTime) Apply(in Inputs) (NodeFreqs, State, error) {
	if !in.Sig.Valid() {
		return NodeFreqs{}, Ready, fmt.Errorf("policy %s: invalid signature", p.Name())
	}
	sig := in.Sig
	from := in.CurrentPstate

	if IsBusyWaiting(sig) {
		// No benefit from frequency for a spinning host core.
		sel := p.defPst
		p.selected = sel
		p.havePred = false
		p.predTime, p.predPower, p.refTime, p.refPower = 0, 0, 0, 0
		return NodeFreqs{CPUPstate: sel}, Ready, nil
	}

	// One table build per signature window; the climb is lookups with
	// bit-identical values to per-pstate Predict calls.
	if err := p.cfg.Model.BuildTable(&p.tbl, sig, from, p.cfg.UseAVX512Model); err != nil {
		return NodeFreqs{}, Ready, err
	}

	sel := p.defPst
	cur := p.tbl.Preds[sel]
	// Climb toward pstate 1 (nominal) while each step still buys at
	// least MinTimeMinGain of relative time.
	for ps := sel - 1; ps >= 1; ps-- {
		next := p.tbl.Preds[ps]
		gain := (cur.TimeSec - next.TimeSec) / cur.TimeSec
		if gain < p.cfg.MinTimeMinGain {
			break
		}
		sel, cur = ps, next
	}
	p.selected = sel
	p.predCPI = cur.CPI
	p.predTime, p.predPower = cur.TimeSec, cur.PowerW
	ref := p.tbl.Preds[p.defPst]
	p.refTime, p.refPower = ref.TimeSec, ref.PowerW
	p.havePred = true
	return NodeFreqs{CPUPstate: sel}, Ready, nil
}

func (p *minTime) Validate(in Inputs) bool {
	if !p.havePred {
		return true
	}
	margin := p.cfg.SigChangeTh + p.cfg.MinTimeMinGain
	return p.predCPI <= 0 || in.Sig.CPI <= p.predCPI*(1+margin)
}

func (p *minTime) Default() NodeFreqs {
	return NodeFreqs{CPUPstate: p.defPst}
}

// LastPrediction implements Predictor.
func (p *minTime) LastPrediction() (PredictionView, bool) {
	if !p.havePred {
		return PredictionView{}, false
	}
	return PredictionView{
		TimeSec:    p.predTime,
		PowerW:     p.predPower,
		RefTimeSec: p.refTime,
		RefPowerW:  p.refPower,
	}, true
}

func (p *minTime) Reset() {
	p.selected = p.defPst
	p.havePred = false
	p.predCPI = 0
	p.predTime, p.predPower = 0, 0
	p.refTime, p.refPower = 0, 0
}
