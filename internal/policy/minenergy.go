package policy

import (
	"fmt"

	"goear/internal/metrics"
	"goear/internal/model"
)

func init() {
	Register(Monitoring, func(cfg Config) (Policy, error) {
		return &monitoring{cfg: cfg}, nil
	})
	Register(MinEnergy, func(cfg Config) (Policy, error) {
		return newMinEnergy(cfg), nil
	})
}

// monitoring is the no-optimisation policy: it observes signatures and
// never moves frequencies away from the defaults.
type monitoring struct{ cfg Config }

func (m *monitoring) Name() string { return Monitoring }

func (m *monitoring) Apply(in Inputs) (NodeFreqs, State, error) {
	return NodeFreqs{CPUPstate: in.CurrentPstate}, Ready, nil
}

func (m *monitoring) Validate(Inputs) bool { return true }

func (m *monitoring) Default() NodeFreqs {
	return NodeFreqs{CPUPstate: m.cfg.DefaultPstate}
}

func (m *monitoring) Reset() {}

// minEnergy is the basic min_energy_to_solution algorithm: a linear
// search over pstates selecting the minimum predicted energy whose
// predicted time stays below time·(1+cpu_policy_th), where time is the
// projection onto the default pstate (§V-B).
type minEnergy struct {
	cfg Config

	// tbl is the per-signature-window prediction table; its buffer is
	// reused across windows.
	tbl model.Table

	selected   int
	havePred   bool
	predTime   float64 // predicted iteration time at the selection
	predCPI    float64
	predPower  float64
	refTime    float64 // default-pstate projection (zero for busy-wait)
	refPower   float64
	isBusyWait bool
}

func newMinEnergy(cfg Config) *minEnergy {
	return &minEnergy{cfg: cfg, selected: cfg.DefaultPstate}
}

func (p *minEnergy) Name() string { return MinEnergy }

// predict dispatches between the AVX512-aware and the default model.
func (p *minEnergy) predict(sig metrics.Signature, from, to int) (model.Prediction, error) {
	if p.cfg.UseAVX512Model {
		return p.cfg.Model.Predict(sig, from, to)
	}
	return p.cfg.Model.PredictDefault(sig, from, to)
}

// selectPstate runs the linear search and returns the chosen pstate
// together with its prediction.
func (p *minEnergy) selectPstate(in Inputs) (int, model.Prediction, error) {
	sig := in.Sig
	from := in.CurrentPstate
	def := p.cfg.DefaultPstate

	// Busy-waiting phases make no observable progress per cycle, so the
	// prediction-based search does not apply: EAR drops a bounded
	// number of pstates to harvest the idle host core.
	if IsBusyWaiting(sig) {
		sel := def + p.cfg.BusyWaitPstateDrop
		if max := p.cfg.Model.PstateCount() - 1; sel > max {
			sel = max
		}
		pred, err := p.predict(sig, from, sel)
		if err != nil {
			return 0, model.Prediction{}, err
		}
		// The host core's spinning does not gate the accelerator:
		// expected time is unchanged. No default-pstate reference
		// applies here.
		pred.TimeSec = sig.IterTimeSec
		p.refTime, p.refPower = 0, 0
		return sel, pred, nil
	}

	// Build the window's prediction table once; the search below (and
	// the reference projection, which the former code computed twice)
	// become lookups with bit-identical values.
	if err := p.cfg.Model.BuildTable(&p.tbl, sig, from, p.cfg.UseAVX512Model); err != nil {
		return 0, model.Prediction{}, err
	}

	// Reference time: the projection of the current signature onto the
	// default pstate (the penalty budget is relative to default).
	refPred := p.tbl.Preds[def]
	limit := refPred.TimeSec * (1 + p.cfg.CPUPolicyTh)
	p.refTime, p.refPower = refPred.TimeSec, refPred.PowerW

	best := def
	bestPred := refPred
	bestEnergy := refPred.TimeSec * refPred.PowerW
	for ps := def; ps < p.cfg.Model.PstateCount(); ps++ {
		pred := p.tbl.Preds[ps]
		if pred.TimeSec > limit {
			continue
		}
		// On ties, the lower frequency wins: the AVX512 model produces
		// an exact energy plateau above the licence pstate, and the
		// licence pstate is the honest request there.
		if e := pred.TimeSec * pred.PowerW; e <= bestEnergy {
			best, bestPred, bestEnergy = ps, pred, e
		}
	}
	return best, bestPred, nil
}

func (p *minEnergy) Apply(in Inputs) (NodeFreqs, State, error) {
	if !in.Sig.Valid() {
		return NodeFreqs{}, Ready, fmt.Errorf("policy %s: invalid signature", p.Name())
	}
	sel, pred, err := p.selectPstate(in)
	if err != nil {
		return NodeFreqs{}, Ready, err
	}
	p.selected = sel
	p.predTime = pred.TimeSec
	p.predCPI = pred.CPI
	p.predPower = pred.PowerW
	p.havePred = true
	p.isBusyWait = IsBusyWaiting(in.Sig)
	return NodeFreqs{CPUPstate: sel}, Ready, nil
}

// Validate checks the post-selection signature against the prediction:
// the measured CPI must not exceed the predicted CPI beyond the policy
// threshold plus model-accuracy margin.
func (p *minEnergy) Validate(in Inputs) bool {
	if !p.havePred || p.isBusyWait {
		return true
	}
	margin := p.cfg.SigChangeTh + p.cfg.CPUPolicyTh
	if p.predCPI > 0 && in.Sig.CPI > p.predCPI*(1+margin) {
		return false
	}
	return true
}

func (p *minEnergy) Default() NodeFreqs {
	return NodeFreqs{CPUPstate: p.cfg.DefaultPstate}
}

// LastPrediction implements Predictor.
func (p *minEnergy) LastPrediction() (PredictionView, bool) {
	if !p.havePred {
		return PredictionView{}, false
	}
	return PredictionView{
		TimeSec:    p.predTime,
		PowerW:     p.predPower,
		RefTimeSec: p.refTime,
		RefPowerW:  p.refPower,
	}, true
}

func (p *minEnergy) Reset() {
	p.selected = p.cfg.DefaultPstate
	p.havePred = false
	p.predTime, p.predCPI, p.predPower = 0, 0, 0
	p.refTime, p.refPower = 0, 0
	p.isBusyWait = false
}
