package policy

import (
	"fmt"

	"goear/internal/metrics"
)

func init() {
	Register(DUF, func(cfg Config) (Policy, error) {
		return newDUF(cfg), nil
	})
}

// DUF is the registered name of the controller-based baseline.
const DUF = "duf"

// dufIPCTolerance is the relative IPC degradation the controller
// accepts per probe step, following André et al.'s published setting.
const dufIPCTolerance = 0.02

// duf reimplements the class of controller-based uncore policies the
// paper compares against in §VII (André et al.'s DUF, and Gholkar et
// al.'s Uncore Power Scavenger): no energy model and no CPU DVFS — the
// controller keeps probing one uncore step down and watches direct
// feedback (IPC and memory bandwidth); if the step hurt, it backs off
// and holds; if a phase change is detected, it releases the uncore and
// starts over.
//
// It exists as a baseline so experiments can contrast EAR's
// model+threshold design (coordinated CPU and uncore selection,
// explicit user-facing penalty bounds) with a pure-feedback controller.
type duf struct {
	cfg Config

	haveRef bool
	refIPC  float64
	refGBs  float64
	curMax  uint64
	holding bool
}

func newDUF(cfg Config) *duf {
	return &duf{cfg: cfg, curMax: cfg.UncoreMaxRatio}
}

func (p *duf) Name() string { return DUF }

// ipc converts the signature's CPI to instructions per cycle, the
// metric the published controllers regulate on.
func ipc(sig metrics.Signature) float64 {
	if sig.CPI <= 0 {
		return 0
	}
	return 1 / sig.CPI
}

func (p *duf) Apply(in Inputs) (NodeFreqs, State, error) {
	if !in.Sig.Valid() {
		return NodeFreqs{}, Ready, fmt.Errorf("policy %s: invalid signature", p.Name())
	}
	sig := in.Sig

	if !p.haveRef {
		// First signature of a phase: record the reference and start
		// probing from the hardware's current operating point.
		p.refIPC = ipc(sig)
		p.refGBs = sig.GBs
		p.haveRef = true
		p.holding = false
		p.curMax = clamp(in.CurrentUncoreRatio, p.cfg.UncoreMinRatio, p.cfg.UncoreMaxRatio)
		return p.step(in)
	}

	// Phase-change release: large IPC or bandwidth *improvement* means
	// new behaviour the lowered uncore may now be throttling.
	if ipc(sig) > p.refIPC*(1+p.cfg.SigChangeTh) || sig.GBs > p.refGBs*(1+p.cfg.SigChangeTh) {
		p.Reset()
		return p.Default(), Continue, nil
	}

	// Degradation beyond tolerance: back off one step and hold.
	if ipc(sig) < p.refIPC*(1-dufIPCTolerance) || sig.GBs < p.refGBs*(1-dufIPCTolerance) {
		p.curMax += p.cfg.UncoreStep
		if p.curMax > p.cfg.UncoreMaxRatio {
			p.curMax = p.cfg.UncoreMaxRatio
		}
		p.holding = true
		return p.freqs(in), Ready, nil
	}

	if p.holding {
		return p.freqs(in), Ready, nil
	}
	return p.step(in)
}

// step lowers the ceiling one notch (or holds at the floor).
func (p *duf) step(in Inputs) (NodeFreqs, State, error) {
	if p.curMax <= p.cfg.UncoreMinRatio {
		p.curMax = p.cfg.UncoreMinRatio
		p.holding = true
		return p.freqs(in), Ready, nil
	}
	p.curMax -= p.cfg.UncoreStep
	if p.curMax < p.cfg.UncoreMinRatio {
		p.curMax = p.cfg.UncoreMinRatio
	}
	return p.freqs(in), Continue, nil
}

// freqs never touches the CPU pstate: the published controllers manage
// only the uncore.
func (p *duf) freqs(in Inputs) NodeFreqs {
	return NodeFreqs{
		CPUPstate:   in.CurrentPstate,
		SetIMC:      true,
		IMCMaxRatio: p.curMax,
		IMCMinRatio: p.cfg.UncoreMinRatio,
	}
}

// Validate keeps watching the feedback while settled; a violation sends
// EARL back through set_def and a fresh probe descent.
func (p *duf) Validate(in Inputs) bool {
	if !p.haveRef {
		return true
	}
	sig := in.Sig
	if ipc(sig) < p.refIPC*(1-2*dufIPCTolerance) {
		return false
	}
	if sig.GBs > 1 && sig.GBs < p.refGBs*(1-2*dufIPCTolerance) {
		return false
	}
	return true
}

func (p *duf) Default() NodeFreqs {
	return NodeFreqs{
		CPUPstate:   p.cfg.DefaultPstate,
		SetIMC:      true,
		IMCMaxRatio: p.cfg.UncoreMaxRatio,
		IMCMinRatio: p.cfg.UncoreMinRatio,
	}
}

func (p *duf) Reset() {
	p.haveRef = false
	p.refIPC, p.refGBs = 0, 0
	p.curMax = p.cfg.UncoreMaxRatio
	p.holding = false
}
