// Package cpu models the processor side of a simulated compute node:
// socket topology, the pstate table, turbo and AVX512 frequency licences,
// and DVFS actuation through the per-socket MSR file.
//
// Pstate numbering follows the EAR convention: pstate 0 is turbo,
// pstate 1 is the nominal (maximum non-turbo) frequency, and each further
// pstate lowers the frequency by one ratio step (100 MHz). On the Xeon
// Gold 6148 used in the paper, pstate 1 = 2.4 GHz and pstate 3 = 2.2 GHz,
// the all-core AVX512 licence frequency.
package cpu

import (
	"fmt"

	"goear/internal/msr"
	"goear/internal/units"
)

// BusClock is the ratio granularity shared by core and uncore domains.
const BusClock = 100 * units.MHz

// Model describes a processor SKU.
type Model struct {
	Name           string
	Sockets        int
	CoresPerSocket int

	// Core frequency ratios, in BusClock units.
	NominalRatio uint64 // maximum non-turbo ratio (pstate 1)
	TurboRatio   uint64 // all-core turbo ratio (pstate 0)
	MinRatio     uint64 // lowest supported ratio
	AVX512Ratio  uint64 // all-core AVX512 licence ratio

	// Uncore frequency ratio range exposed in MSR 0x620 after boot.
	UncoreMinRatio uint64
	UncoreMaxRatio uint64
}

// XeonGold6148 is the two-socket Lenovo SD530 configuration used for all
// non-CUDA experiments in the paper: 2× Xeon Gold 6148 (20 cores,
// 2.4 GHz nominal, 2.2 GHz all-core AVX512, uncore 1.2–2.4 GHz).
func XeonGold6148() Model {
	return Model{
		Name:           "Intel(R) Xeon(R) Gold 6148 CPU @ 2.40GHz",
		Sockets:        2,
		CoresPerSocket: 20,
		NominalRatio:   24,
		TurboRatio:     26, // modelled all-core turbo
		MinRatio:       10,
		AVX512Ratio:    22,
		UncoreMinRatio: 12,
		UncoreMaxRatio: 24,
	}
}

// XeonGold6142M is the GPU-node CPU used for the CUDA kernels: 2× Xeon
// Gold 6142M (16 cores, 2.6 GHz nominal), same uncore range.
func XeonGold6142M() Model {
	return Model{
		Name:           "Intel(R) Xeon(R) Gold 6142M CPU @ 2.60GHz",
		Sockets:        2,
		CoresPerSocket: 16,
		NominalRatio:   26,
		TurboRatio:     28,
		MinRatio:       10,
		AVX512Ratio:    22,
		UncoreMinRatio: 12,
		UncoreMaxRatio: 24,
	}
}

// XeonGold6252 is a Cascade Lake-SP part (24 cores, 2.1 GHz nominal),
// included to demonstrate per-architecture portability: the learning
// phase retrains the energy model and the whole pipeline runs unchanged.
// Cascade Lake keeps Skylake's uncore architecture and MSR interfaces.
func XeonGold6252() Model {
	return Model{
		Name:           "Intel(R) Xeon(R) Gold 6252 CPU @ 2.10GHz",
		Sockets:        2,
		CoresPerSocket: 24,
		NominalRatio:   21,
		TurboRatio:     24,
		MinRatio:       10,
		AVX512Ratio:    16,
		UncoreMinRatio: 12,
		UncoreMaxRatio: 24,
	}
}

// Validate reports whether the model is internally consistent.
func (m Model) Validate() error {
	switch {
	case m.Sockets <= 0 || m.CoresPerSocket <= 0:
		return fmt.Errorf("cpu: %s: topology must be positive", m.Name)
	case m.MinRatio == 0 || m.MinRatio > m.NominalRatio:
		return fmt.Errorf("cpu: %s: min ratio %d outside (0, nominal %d]", m.Name, m.MinRatio, m.NominalRatio)
	case m.TurboRatio < m.NominalRatio:
		return fmt.Errorf("cpu: %s: turbo ratio %d below nominal %d", m.Name, m.TurboRatio, m.NominalRatio)
	case m.AVX512Ratio > m.NominalRatio:
		return fmt.Errorf("cpu: %s: AVX512 ratio %d above nominal %d", m.Name, m.AVX512Ratio, m.NominalRatio)
	case m.UncoreMinRatio == 0 || m.UncoreMinRatio > m.UncoreMaxRatio:
		return fmt.Errorf("cpu: %s: uncore range [%d,%d] invalid", m.Name, m.UncoreMinRatio, m.UncoreMaxRatio)
	}
	return nil
}

// TotalCores returns the number of cores in the node.
func (m Model) TotalCores() int { return m.Sockets * m.CoresPerSocket }

// PstateCount returns the number of pstates: turbo plus every 100 MHz
// step from nominal down to the minimum ratio.
func (m Model) PstateCount() int { return int(m.NominalRatio-m.MinRatio) + 2 }

// PstateFreq returns the target frequency of pstate p. Pstate 0 (turbo)
// reports the nominal frequency plus one ratio step, matching how
// cpufreq exposes the turbo request; the realised turbo frequency is
// workload dependent and resolved by EffectiveRatio.
func (m Model) PstateFreq(p int) (units.Freq, error) {
	if p < 0 || p >= m.PstateCount() {
		return 0, fmt.Errorf("cpu: pstate %d out of range [0,%d)", p, m.PstateCount())
	}
	if p == 0 {
		return units.FromRatio(m.NominalRatio+1, BusClock), nil
	}
	return units.FromRatio(m.NominalRatio-uint64(p-1), BusClock), nil
}

// PstateRatio returns the requested core ratio for pstate p.
func (m Model) PstateRatio(p int) (uint64, error) {
	if p < 0 || p >= m.PstateCount() {
		return 0, fmt.Errorf("cpu: pstate %d out of range [0,%d)", p, m.PstateCount())
	}
	if p == 0 {
		return m.NominalRatio + 1, nil
	}
	return m.NominalRatio - uint64(p-1), nil
}

// RatioPstate maps a requested core ratio back to its pstate index.
func (m Model) RatioPstate(ratio uint64) (int, error) {
	if ratio > m.NominalRatio {
		return 0, nil
	}
	if ratio < m.MinRatio {
		return 0, fmt.Errorf("cpu: ratio %d below minimum %d", ratio, m.MinRatio)
	}
	return int(m.NominalRatio-ratio) + 1, nil
}

// Pstates returns the full frequency table, pstate 0 first.
func (m Model) Pstates() []units.Freq {
	out := make([]units.Freq, m.PstateCount())
	for p := range out {
		f, _ := m.PstateFreq(p)
		out[p] = f
	}
	return out
}

// EffectiveRatio resolves the ratio the cores actually run at given the
// requested ratio and the AVX512 licence: when the whole socket executes
// AVX512 (vpi≈1) the ratio is capped at the licence ratio; turbo requests
// resolve to the all-core turbo ratio. Mixed vpi is handled by the
// execution model, which weights the two licence levels.
func (m Model) EffectiveRatio(requested uint64, avx512Active bool) uint64 {
	r := requested
	if r > m.TurboRatio {
		r = m.TurboRatio
	}
	if r < m.MinRatio {
		r = m.MinRatio
	}
	if avx512Active && r > m.AVX512Ratio {
		r = m.AVX512Ratio
	}
	return r
}

// Socket is one package of a node: its MSR file plus cached topology.
// The register file is embedded so one Socket is one allocation; MSR
// points at the embedded file, so a constructed Socket must not be
// copied by value.
type Socket struct {
	Model Model
	ID    int
	MSR   *msr.File

	file msr.File
}

// NewSocket builds a socket with power-on MSR defaults and the perf
// control register requesting the nominal ratio.
func NewSocket(m Model, id int) (*Socket, error) {
	s := &Socket{}
	if err := s.Init(m, id); err != nil {
		return nil, err
	}
	return s, nil
}

// Init (re)initialises the socket in place to the power-on state, as
// NewSocket does, without allocating. It is the construction path for
// sockets living inside a larger allocation (the simulator's per-node
// state).
func (s *Socket) Init(m Model, id int) error {
	if err := m.Validate(); err != nil {
		return err
	}
	s.Model, s.ID = m, id
	s.file.Init(m.UncoreMinRatio, m.UncoreMaxRatio)
	s.MSR = &s.file
	if err := s.MSR.WriteHw(msr.IA32PerfCtl, msr.EncodePerfCtl(m.NominalRatio)); err != nil {
		return err
	}
	if err := s.MSR.WriteHw(msr.IA32PerfStatus, msr.EncodePerfCtl(m.NominalRatio)); err != nil {
		return err
	}
	return s.MSR.WriteHw(msr.MSRUncorePerfStatus,
		msr.EncodeUncorePerfStatus(m.UncoreMinRatio))
}

// RequestRatio writes the requested core ratio through IA32_PERF_CTL,
// exactly as the EAR daemon does via the cpufreq userspace governor.
func (s *Socket) RequestRatio(ratio uint64) error {
	if ratio < s.Model.MinRatio || ratio > s.Model.TurboRatio {
		return fmt.Errorf("cpu: socket %d: ratio %d outside [%d,%d]",
			s.ID, ratio, s.Model.MinRatio, s.Model.TurboRatio)
	}
	return s.MSR.Write(msr.IA32PerfCtl, msr.EncodePerfCtl(ratio))
}

// RequestedRatio reads back the requested core ratio.
func (s *Socket) RequestedRatio() (uint64, error) {
	v, err := s.MSR.Read(msr.IA32PerfCtl)
	if err != nil {
		return 0, err
	}
	return msr.DecodePerfCtl(v), nil
}

// SetUncoreLimits writes MSR 0x620, clamping to the hardware range as
// the silicon does.
func (s *Socket) SetUncoreLimits(minRatio, maxRatio uint64) error {
	if minRatio > maxRatio {
		return fmt.Errorf("cpu: socket %d: uncore min %d > max %d", s.ID, minRatio, maxRatio)
	}
	clamp := func(r uint64) uint64 {
		if r < s.Model.UncoreMinRatio {
			return s.Model.UncoreMinRatio
		}
		if r > s.Model.UncoreMaxRatio {
			return s.Model.UncoreMaxRatio
		}
		return r
	}
	minRatio, maxRatio = clamp(minRatio), clamp(maxRatio)
	return s.MSR.Write(msr.MSRUncoreRatioLimit,
		msr.EncodeUncoreRatioLimit(msr.UncoreRatioLimit{MinRatio: minRatio, MaxRatio: maxRatio}))
}

// UncoreLimits reads the decoded MSR 0x620.
func (s *Socket) UncoreLimits() (msr.UncoreRatioLimit, error) {
	v, err := s.MSR.Read(msr.MSRUncoreRatioLimit)
	if err != nil {
		return msr.UncoreRatioLimit{}, err
	}
	return msr.DecodeUncoreRatioLimit(v), nil
}

// CurrentUncoreRatio reads the operating uncore ratio from MSR 0x621.
func (s *Socket) CurrentUncoreRatio() (uint64, error) {
	v, err := s.MSR.Read(msr.MSRUncorePerfStatus)
	if err != nil {
		return 0, err
	}
	return msr.DecodeUncorePerfStatus(v), nil
}

// OperatingPoint reads the socket's requested core ratio and operating
// uncore ratio in one call — the pair every steady-state evaluation
// keys on. Batch stepping reads it per arm-check, so the two register
// loads share one call.
func (s *Socket) OperatingPoint() (coreRatio, uncoreRatio uint64, err error) {
	cv, err := s.MSR.Read(msr.IA32PerfCtl)
	if err != nil {
		return 0, 0, err
	}
	uv, err := s.MSR.Read(msr.MSRUncorePerfStatus)
	if err != nil {
		return 0, 0, err
	}
	return msr.DecodePerfCtl(cv), msr.DecodeUncorePerfStatus(uv), nil
}
