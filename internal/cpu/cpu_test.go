package cpu

import (
	"testing"
	"testing/quick"

	"goear/internal/msr"
	"goear/internal/units"
)

func TestModelsValid(t *testing.T) {
	for _, m := range []Model{XeonGold6148(), XeonGold6142M(), XeonGold6252()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	base := XeonGold6148()
	mutations := []func(*Model){
		func(m *Model) { m.Sockets = 0 },
		func(m *Model) { m.CoresPerSocket = -1 },
		func(m *Model) { m.MinRatio = 0 },
		func(m *Model) { m.MinRatio = m.NominalRatio + 1 },
		func(m *Model) { m.TurboRatio = m.NominalRatio - 1 },
		func(m *Model) { m.AVX512Ratio = m.NominalRatio + 1 },
		func(m *Model) { m.UncoreMinRatio = 0 },
		func(m *Model) { m.UncoreMinRatio = m.UncoreMaxRatio + 1 },
	}
	for i, mut := range mutations {
		m := base
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestPstateTable6148(t *testing.T) {
	m := XeonGold6148()
	// Pstate 1 is nominal 2.4 GHz, pstate 3 is 2.2 GHz (the paper's
	// AVX512 example), pstate 0 advertises nominal+1 step.
	cases := []struct {
		p    int
		want units.Freq
	}{
		{0, 2.5 * units.GHz},
		{1, 2.4 * units.GHz},
		{2, 2.3 * units.GHz},
		{3, 2.2 * units.GHz},
	}
	for _, c := range cases {
		f, err := m.PstateFreq(c.p)
		if err != nil {
			t.Fatalf("PstateFreq(%d): %v", c.p, err)
		}
		if f != c.want {
			t.Errorf("PstateFreq(%d) = %v, want %v", c.p, f, c.want)
		}
	}
	if n := m.PstateCount(); n != 16 {
		t.Errorf("PstateCount = %d, want 16 (turbo + 2.4..1.0)", n)
	}
	last, err := m.PstateFreq(m.PstateCount() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if last != 1.0*units.GHz {
		t.Errorf("lowest pstate = %v, want 1GHz", last)
	}
}

func TestPstateBounds(t *testing.T) {
	m := XeonGold6148()
	if _, err := m.PstateFreq(-1); err == nil {
		t.Error("expected error for pstate -1")
	}
	if _, err := m.PstateFreq(m.PstateCount()); err == nil {
		t.Error("expected error for pstate beyond table")
	}
	if _, err := m.PstateRatio(-1); err == nil {
		t.Error("expected error for ratio of pstate -1")
	}
}

func TestPstateRatioRoundTrip(t *testing.T) {
	m := XeonGold6148()
	for p := 1; p < m.PstateCount(); p++ {
		r, err := m.PstateRatio(p)
		if err != nil {
			t.Fatal(err)
		}
		back, err := m.RatioPstate(r)
		if err != nil {
			t.Fatal(err)
		}
		if back != p {
			t.Errorf("pstate %d -> ratio %d -> pstate %d", p, r, back)
		}
	}
	// Any ratio above nominal maps to turbo pstate 0.
	if p, err := m.RatioPstate(m.TurboRatio); err != nil || p != 0 {
		t.Errorf("RatioPstate(turbo) = %d, %v", p, err)
	}
	if _, err := m.RatioPstate(m.MinRatio - 1); err == nil {
		t.Error("expected error below min ratio")
	}
}

func TestPstatesMonotonicProperty(t *testing.T) {
	// The pstate table must be strictly decreasing in frequency.
	for _, m := range []Model{XeonGold6148(), XeonGold6142M(), XeonGold6252()} {
		ps := m.Pstates()
		for i := 1; i < len(ps); i++ {
			if ps[i] >= ps[i-1] {
				t.Errorf("%s: pstate %d (%v) not below pstate %d (%v)",
					m.Name, i, ps[i], i-1, ps[i-1])
			}
		}
	}
}

func TestEffectiveRatio(t *testing.T) {
	m := XeonGold6148()
	cases := []struct {
		req  uint64
		avx  bool
		want uint64
	}{
		{24, false, 24},
		{24, true, 22},  // AVX512 licence caps nominal to 2.2 GHz
		{22, true, 22},  // at the licence: unchanged
		{20, true, 20},  // below licence: unchanged
		{99, false, 26}, // turbo clamp
		{1, false, 10},  // min clamp
		{26, true, 22},  // turbo + AVX512 still capped by licence
	}
	for _, c := range cases {
		if got := m.EffectiveRatio(c.req, c.avx); got != c.want {
			t.Errorf("EffectiveRatio(%d,%v) = %d, want %d", c.req, c.avx, got, c.want)
		}
	}
}

func TestEffectiveRatioInvariantProperty(t *testing.T) {
	m := XeonGold6148()
	fn := func(req uint8, avx bool) bool {
		r := m.EffectiveRatio(uint64(req), avx)
		if r < m.MinRatio || r > m.TurboRatio {
			return false
		}
		if avx && r > m.AVX512Ratio {
			return false
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestSocketDVFSThroughMSR(t *testing.T) {
	s, err := NewSocket(XeonGold6148(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RequestRatio(22); err != nil {
		t.Fatal(err)
	}
	r, err := s.RequestedRatio()
	if err != nil {
		t.Fatal(err)
	}
	if r != 22 {
		t.Errorf("RequestedRatio = %d, want 22", r)
	}
	// Direct MSR view must agree.
	v, err := s.MSR.Read(msr.IA32PerfCtl)
	if err != nil {
		t.Fatal(err)
	}
	if msr.DecodePerfCtl(v) != 22 {
		t.Errorf("MSR view = %d, want 22", msr.DecodePerfCtl(v))
	}
}

func TestSocketRequestRatioBounds(t *testing.T) {
	s, err := NewSocket(XeonGold6148(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RequestRatio(9); err == nil {
		t.Error("expected error below min ratio")
	}
	if err := s.RequestRatio(27); err == nil {
		t.Error("expected error above turbo ratio")
	}
}

func TestSocketUncoreLimits(t *testing.T) {
	s, err := NewSocket(XeonGold6148(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Boot default is the full hardware range.
	u, err := s.UncoreLimits()
	if err != nil {
		t.Fatal(err)
	}
	if u.MinRatio != 12 || u.MaxRatio != 24 {
		t.Errorf("boot limits = %+v", u)
	}
	// Narrow the window.
	if err := s.SetUncoreLimits(18, 18); err != nil {
		t.Fatal(err)
	}
	u, _ = s.UncoreLimits()
	if u.MinRatio != 18 || u.MaxRatio != 18 {
		t.Errorf("pinned limits = %+v", u)
	}
	// Out-of-range values clamp to hardware capability.
	if err := s.SetUncoreLimits(1, 99); err != nil {
		t.Fatal(err)
	}
	u, _ = s.UncoreLimits()
	if u.MinRatio != 12 || u.MaxRatio != 24 {
		t.Errorf("clamped limits = %+v", u)
	}
	// Inverted range rejected.
	if err := s.SetUncoreLimits(20, 15); err == nil {
		t.Error("expected error for min > max")
	}
}

func TestSocketUncoreLimitClampProperty(t *testing.T) {
	s, err := NewSocket(XeonGold6148(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(minR, maxR uint8) bool {
		lo, hi := uint64(minR%30), uint64(maxR%30)
		if lo > hi {
			lo, hi = hi, lo
		}
		if err := s.SetUncoreLimits(lo, hi); err != nil {
			return false
		}
		u, err := s.UncoreLimits()
		if err != nil {
			return false
		}
		return u.MinRatio >= s.Model.UncoreMinRatio &&
			u.MaxRatio <= s.Model.UncoreMaxRatio &&
			u.MinRatio <= u.MaxRatio
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestNewSocketRejectsInvalidModel(t *testing.T) {
	m := XeonGold6148()
	m.Sockets = 0
	if _, err := NewSocket(m, 0); err == nil {
		t.Error("expected error for invalid model")
	}
}
