package accounting

import "goear/internal/telemetry"

// Metric names (package-level constants per the goearvet telemetry
// analyzer). One family set serves both the shard daemons' stores and
// the federation root's merged store: the registry's get-or-create
// semantics fold co-hosted stores into the same series.
const (
	metricAcctRecords = "goear_accounting_records"
	metricAcctIngest  = "goear_accounting_ingest_total"
	metricAcctQueries = "goear_accounting_queries_total"
	metricAcctCache   = "goear_accounting_snapshot_cache_total"
	metricAcctPruned  = "goear_accounting_pruned_total"
)

// storeTel is a store's pre-resolved instrument bundle; nil fields
// (telemetry absent) make every use a nil-receiver no-op.
type storeTel struct {
	records   *telemetry.Gauge
	ingAccept *telemetry.Counter // result="accepted"
	ingDup    *telemetry.Counter // result="duplicate"
	ingRepl   *telemetry.Counter // result="replaced"
	queries   *telemetry.Counter
	cacheHit  *telemetry.Counter // result="hit"
	cacheMiss *telemetry.Counter // result="miss"
	pruned    *telemetry.Counter
}

func newStoreTel(s *telemetry.Set) storeTel {
	r := s.Reg()
	ingest := r.CounterVec(metricAcctIngest, "job records ingested by outcome", "result")
	cache := r.CounterVec(metricAcctCache, "canonical snapshot builds avoided or paid", "result")
	return storeTel{
		records:   r.Gauge(metricAcctRecords, "job energy records resident in the store"),
		ingAccept: ingest.With("accepted"),
		ingDup:    ingest.With("duplicate"),
		ingRepl:   ingest.With("replaced"),
		queries:   r.Counter(metricAcctQueries, "job queries served"),
		cacheHit:  cache.With("hit"),
		cacheMiss: cache.With("miss"),
		pruned:    r.Counter(metricAcctPruned, "job records evicted by the retention cap"),
	}
}
