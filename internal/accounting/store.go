package accounting

import (
	"sort"
	"sync"

	"goear/internal/telemetry"
)

// Class is an ingest outcome, mirroring the eardbd record
// classification so job records ride the same dedup semantics as node
// reports: a byte-identical re-insert is a duplicate, a same-key
// different-payload insert replaces.
type Class int

const (
	ClassAccepted Class = iota
	ClassDuplicate
	ClassReplaced
)

// Store holds job energy records keyed by (job, step, node, phase)
// and serves them read-optimised: the canonical sorted snapshot is
// built once per generation and handed out until the next mutating
// insert invalidates it, so a query storm between ingest batches
// sorts nothing.
type Store struct {
	tel storeTel

	mu   sync.Mutex
	recs map[Key]Record
	gen  uint64
	// maxRecords, when positive, caps the resident record count:
	// crossing it evicts whole (job, step) groups, oldest window first,
	// until the store fits again.
	maxRecords int

	snap    []Record // cached canonical dump; immutable once published
	snapGen uint64
	snapOK  bool
}

// NewStore builds an empty store. ts may be nil (no telemetry); pass
// telemetry.Default() to opt into the process-wide set.
func NewStore(ts *telemetry.Set) *Store {
	return &Store{
		tel:  newStoreTel(ts),
		recs: make(map[Key]Record),
	}
}

// Insert validates and folds one record in, reporting how it was
// classified. Accepted and replaced records bump the store generation
// — the signal snapshot caches (local and federation-root) key on.
func (s *Store) Insert(r Record) (Class, error) {
	if err := r.Validate(); err != nil {
		return ClassAccepted, err
	}
	k := r.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.recs[k]; ok {
		if prev == r {
			s.tel.ingDup.Inc()
			return ClassDuplicate, nil
		}
		s.recs[k] = r
		s.gen++
		s.tel.ingRepl.Inc()
		return ClassReplaced, nil
	}
	s.recs[k] = r
	s.gen++
	s.tel.ingAccept.Inc()
	s.pruneLocked()
	s.tel.records.Set(float64(len(s.recs)))
	return ClassAccepted, nil
}

// SetMaxRecords installs (or with 0 removes) the retention cap and
// prunes immediately if the store already exceeds it.
func (s *Store) SetMaxRecords(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxRecords = n
	s.pruneLocked()
	s.tel.records.Set(float64(len(s.recs)))
}

// MaxRecords reports the retention cap (0 = unlimited).
func (s *Store) MaxRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxRecords
}

// pruneLocked enforces the retention cap by evicting whole (job, step)
// groups — a job step's records age out together, never partially —
// oldest first by the group's latest window end, ties broken by key
// order so two stores with identical contents prune identically. Any
// eviction bumps the generation: stacked snapshot caches must rebuild.
func (s *Store) pruneLocked() {
	if s.maxRecords <= 0 || len(s.recs) <= s.maxRecords {
		return
	}
	type stepKey struct{ job, step string }
	type group struct {
		k     stepKey
		end   float64 // latest window end in the group
		count int
	}
	byStep := make(map[stepKey]int, len(s.recs))
	groups := make([]group, 0, len(s.recs))
	for k, r := range s.recs {
		sk := stepKey{k.JobID, k.StepID}
		if i, ok := byStep[sk]; ok {
			groups[i].count++
			if r.EndSec > groups[i].end {
				groups[i].end = r.EndSec
			}
			continue
		}
		byStep[sk] = len(groups)
		groups = append(groups, group{k: sk, end: r.EndSec, count: 1})
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].end != groups[j].end {
			return groups[i].end < groups[j].end
		}
		if groups[i].k.job != groups[j].k.job {
			return groups[i].k.job < groups[j].k.job
		}
		return groups[i].k.step < groups[j].k.step
	})
	evict := make(map[stepKey]bool)
	left := len(s.recs)
	for _, g := range groups {
		if left <= s.maxRecords {
			break
		}
		evict[g.k] = true
		left -= g.count
	}
	if len(evict) == 0 {
		return
	}
	for k := range s.recs {
		if evict[stepKey{k.JobID, k.StepID}] {
			delete(s.recs, k)
			s.tel.pruned.Inc()
		}
	}
	s.gen++
}

// Seed restores records wholesale — a daemon reloading its persisted
// store after a restart — without classifying them as fresh ingest.
// The generation still advances so stacked snapshot caches rebuild.
func (s *Store) Seed(recs []Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		s.recs[r.Key()] = r
	}
	if len(recs) > 0 {
		s.gen++
	}
	s.pruneLocked()
	s.tel.records.Set(float64(len(s.recs)))
}

// Get returns the record stored under k, if any.
func (s *Store) Get(k Key) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[k]
	return r, ok
}

// Len reports the resident record count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Generation reports the mutation counter: it advances on every
// accepted or replaced record and never otherwise, so equal
// generations imply identical store contents.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Snapshot returns the canonical (Key-ordered) dump of the store. The
// slice is shared and must not be mutated: it is rebuilt — never
// edited — when the generation moves, so concurrent readers always
// hold an internally consistent dump.
func (s *Store) Snapshot() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() []Record {
	if s.snapOK && s.snapGen == s.gen {
		s.tel.cacheHit.Inc()
		return s.snap
	}
	s.tel.cacheMiss.Inc()
	snap := make([]Record, 0, len(s.recs))
	for _, r := range s.recs {
		snap = append(snap, r)
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i].Key().Less(snap[j].Key()) })
	s.snap = snap
	s.snapGen = s.gen
	s.snapOK = true
	return snap
}

// Query serves one filtered, cursor-paginated page over the canonical
// snapshot. Two stores with identical contents return byte-identical
// pages for the same query — the property the federation-root vs.
// single-daemon acceptance check rides on.
func (s *Store) Query(q Query) (Page, error) {
	s.mu.Lock()
	snap := s.snapshotLocked()
	s.mu.Unlock()
	s.tel.queries.Inc()
	return PageRecords(snap, q)
}
