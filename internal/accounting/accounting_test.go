package accounting

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"goear/internal/telemetry"
)

func mustRecord(t *testing.T, job, step, user, node string, phase int) Record {
	t.Helper()
	r, err := NewRecord(
		Meta{JobID: job, StepID: step, User: user, Policy: "min_energy"},
		Window{Node: node, Phase: phase, StartSec: float64(120 * phase), EndSec: float64(120 * (phase + 1))},
		Energy{PkgJ: 1000, DramJ: 120, UncoreJ: 80, NodeJ: 1400},
		Rates{AvgCPUGHz: 2.1, AvgIMCGHz: 2.4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRecordValidation(t *testing.T) {
	good := Meta{JobID: "j", StepID: "0", User: "u"}
	win := Window{Node: "n", EndSec: 1}
	cases := []struct {
		name string
		m    Meta
		w    Window
		e    Energy
	}{
		{"empty job", Meta{StepID: "0", User: "u"}, win, Energy{}},
		{"empty step", Meta{JobID: "j", User: "u"}, win, Energy{}},
		{"empty user", Meta{JobID: "j", StepID: "0"}, win, Energy{}},
		{"empty node", good, Window{EndSec: 1}, Energy{}},
		{"negative phase", good, Window{Node: "n", Phase: -1, EndSec: 1}, Energy{}},
		{"backwards window", good, Window{Node: "n", StartSec: 2, EndSec: 1}, Energy{}},
		{"negative energy", good, win, Energy{PkgJ: -1}},
		{"nan energy", good, win, Energy{NodeJ: math.NaN()}},
		{"inf energy", good, win, Energy{DramJ: math.Inf(1)}},
	}
	for _, c := range cases {
		if _, err := NewRecord(c.m, c.w, c.e, Rates{}); err == nil {
			t.Errorf("%s: NewRecord accepted an invalid record", c.name)
		}
	}
	r, err := NewRecord(good, win, Energy{}, Rates{})
	if err != nil {
		t.Fatal(err)
	}
	if r.V != CodecVersion {
		t.Fatalf("V = %d, want %d", r.V, CodecVersion)
	}
	r.V = CodecVersion + 1
	if err := r.Validate(); err == nil {
		t.Error("Validate accepted a foreign codec version")
	}
}

func TestAttributeConservesEnergy(t *testing.T) {
	total := Energy{PkgJ: 30000, DramJ: 4000, UncoreJ: 2500, NodeJ: 40000}
	tenants := []Tenant{
		{Meta: Meta{JobID: "a", StepID: "0", User: "alice"}, Usage: Usage{Instr: 3e12, Cycles: 2e12, DRAMBytes: 1e11}},
		{Meta: Meta{JobID: "b", StepID: "0", User: "bob"}, Usage: Usage{Instr: 1e12, Cycles: 5e12, DRAMBytes: 9e11}},
		{Meta: Meta{JobID: "c", StepID: "0", User: "carol"}, Usage: Usage{Instr: 7e11, Cycles: 1e12, DRAMBytes: 0}},
	}
	recs, err := Attribute(Window{Node: "n1", EndSec: 120}, total, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(tenants) {
		t.Fatalf("got %d records for %d tenants", len(recs), len(tenants))
	}
	var pkg, dram, unc, node float64
	for _, r := range recs {
		pkg += r.PkgJ
		dram += r.DramJ
		unc += r.UncoreJ
		node += r.NodeJ
	}
	close := func(got, want float64) bool { return math.Abs(got-want) <= 1e-9*want }
	if !close(pkg, total.PkgJ) || !close(dram, total.DramJ) || !close(unc, total.UncoreJ) || !close(node, total.NodeJ) {
		t.Errorf("attribution lost joules: pkg %.12f dram %.12f uncore %.12f node %.12f",
			pkg, dram, unc, node)
	}
	// A tenant with more cycles draws a larger package share.
	if recs[1].PkgJ <= recs[0].PkgJ {
		t.Errorf("cycle-heavy tenant got pkg %.1f <= %.1f", recs[1].PkgJ, recs[0].PkgJ)
	}
	// The zero-traffic tenant gets exactly zero DRAM energy.
	if recs[2].DramJ != 0 {
		t.Errorf("zero-traffic tenant got DramJ %.3f, want 0", recs[2].DramJ)
	}
}

func TestAttributeEdgeCases(t *testing.T) {
	if _, err := Attribute(Window{Node: "n", EndSec: 1}, Energy{}, nil); err == nil {
		t.Error("Attribute accepted an empty tenant set")
	}
	// All-zero usage splits equally.
	tenants := []Tenant{
		{Meta: Meta{JobID: "a", StepID: "0", User: "u"}},
		{Meta: Meta{JobID: "b", StepID: "0", User: "u"}},
	}
	recs, err := Attribute(Window{Node: "n", EndSec: 1}, Energy{PkgJ: 100, NodeJ: 100}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(recs[0].PkgJ-recs[1].PkgJ) > 1e-9 || math.Abs(recs[0].PkgJ+recs[1].PkgJ-100) > 1e-9 {
		t.Errorf("all-zero usage split %.6f / %.6f, want equal halves of 100", recs[0].PkgJ, recs[1].PkgJ)
	}
}

func TestCursorRoundTrip(t *testing.T) {
	k := Key{JobID: "job1", StepID: "0", Node: "node007", Phase: 3}
	got, err := DecodeCursor(EncodeCursor(k))
	if err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Fatalf("round trip %+v != %+v", got, k)
	}
	if _, err := DecodeCursor("!!not-base64!!"); err == nil {
		t.Error("DecodeCursor accepted garbage")
	}
}

func TestStoreClassesAndGeneration(t *testing.T) {
	s := NewStore(nil)
	r := mustRecord(t, "j1", "0", "alice", "n1", 0)
	class, err := s.Insert(r)
	if err != nil || class != ClassAccepted {
		t.Fatalf("first insert: class %v err %v", class, err)
	}
	g1 := s.Generation()
	if class, _ = s.Insert(r); class != ClassDuplicate {
		t.Fatalf("identical re-insert: class %v, want duplicate", class)
	}
	if s.Generation() != g1 {
		t.Error("duplicate moved the generation counter")
	}
	r2 := r
	r2.PkgJ += 5
	if class, _ = s.Insert(r2); class != ClassReplaced {
		t.Fatalf("same-key different payload: class %v, want replaced", class)
	}
	if s.Generation() == g1 {
		t.Error("replace did not move the generation counter")
	}
	bad := r
	bad.V = 99
	if _, err := s.Insert(bad); err == nil {
		t.Error("Insert accepted a foreign codec version")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if got, ok := s.Get(r.Key()); !ok || got.PkgJ != r2.PkgJ {
		t.Errorf("Get returned %+v ok=%v", got, ok)
	}
}

func TestSnapshotCacheCounters(t *testing.T) {
	set := telemetry.NewSet()
	s := NewStore(set)
	for i := 0; i < 3; i++ {
		if _, err := s.Insert(mustRecord(t, fmt.Sprintf("j%d", i), "0", "alice", "n1", 0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Snapshot() // miss: first build
	s.Snapshot() // hit
	s.Snapshot() // hit
	if _, err := s.Insert(mustRecord(t, "j9", "0", "bob", "n2", 0)); err != nil {
		t.Fatal(err)
	}
	s.Snapshot() // miss: generation moved

	var buf bytes.Buffer
	if err := set.Reg().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`goear_accounting_snapshot_cache_total{result="hit"} 2`,
		`goear_accounting_snapshot_cache_total{result="miss"} 2`,
		`goear_accounting_records 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("telemetry missing %q in:\n%s", want, text)
		}
	}
}

func TestSnapshotCanonicalOrder(t *testing.T) {
	s := NewStore(nil)
	// Insert out of order; the snapshot must come back Key-sorted.
	for _, r := range []Record{
		mustRecord(t, "j2", "0", "u", "n1", 0),
		mustRecord(t, "j1", "1", "u", "n2", 1),
		mustRecord(t, "j1", "0", "u", "n2", 0),
		mustRecord(t, "j1", "0", "u", "n1", 1),
	} {
		if _, err := s.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	for i := 1; i < len(snap); i++ {
		if !snap[i-1].Key().Less(snap[i].Key()) {
			t.Fatalf("snapshot out of order at %d: %+v then %+v", i, snap[i-1].Key(), snap[i].Key())
		}
	}
}

// windowRecord builds a valid record with an explicit time window so
// the retention tests can control group recency directly.
func windowRecord(t *testing.T, job, step, node string, start, end float64) Record {
	t.Helper()
	r, err := NewRecord(
		Meta{JobID: job, StepID: step, User: "u", Policy: "min_energy"},
		Window{Node: node, StartSec: start, EndSec: end},
		Energy{PkgJ: 10, DramJ: 1, UncoreJ: 1, NodeJ: 13},
		Rates{AvgCPUGHz: 2.1, AvgIMCGHz: 2.4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestStoreRetentionCap(t *testing.T) {
	set := telemetry.NewSet()
	s := NewStore(set)
	// Three job steps of two records each, end times ascending: j0
	// (oldest) ends at 100, j1 at 200, j2 at 300.
	for j := 0; j < 3; j++ {
		end := float64(100 * (j + 1))
		for n := 0; n < 2; n++ {
			job := fmt.Sprintf("j%d", j)
			if _, err := s.Insert(windowRecord(t, job, "0", fmt.Sprintf("n%d", n), end-60, end)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.MaxRecords() != 0 {
		t.Fatalf("MaxRecords = %d before any cap", s.MaxRecords())
	}

	// Installing a cap of 4 must evict the oldest group whole and bump
	// the generation.
	gen := s.Generation()
	s.SetMaxRecords(4)
	if s.Len() != 4 {
		t.Fatalf("Len = %d after SetMaxRecords(4), want 4", s.Len())
	}
	if s.Generation() == gen {
		t.Error("eviction did not move the generation counter")
	}
	for n := 0; n < 2; n++ {
		if _, ok := s.Get(Key{JobID: "j0", StepID: "0", Node: fmt.Sprintf("n%d", n)}); ok {
			t.Errorf("j0/n%d survived eviction of the oldest group", n)
		}
		if _, ok := s.Get(Key{JobID: "j1", StepID: "0", Node: fmt.Sprintf("n%d", n)}); !ok {
			t.Errorf("j1/n%d evicted out of order", n)
		}
	}

	// A fresh ingest over the cap prunes on insert. j3 is the newest
	// group, so j1 (now oldest) goes; its second record must not linger
	// — groups age out whole, never partially.
	if _, err := s.Insert(windowRecord(t, "j3", "0", "n0", 340, 400)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d after over-cap insert, want 3", s.Len())
	}
	for n := 0; n < 2; n++ {
		if _, ok := s.Get(Key{JobID: "j1", StepID: "0", Node: fmt.Sprintf("n%d", n)}); ok {
			t.Errorf("j1/n%d survived a whole-group eviction", n)
		}
	}
	if _, ok := s.Get(Key{JobID: "j3", StepID: "0", Node: "n0"}); !ok {
		t.Error("the record that triggered pruning was itself evicted")
	}

	// Seed rides the same cap.
	s.Seed([]Record{
		windowRecord(t, "j4", "0", "n0", 440, 500),
		windowRecord(t, "j4", "0", "n1", 440, 500),
		windowRecord(t, "j4", "0", "n2", 440, 500),
	})
	if s.Len() != 4 {
		t.Fatalf("Len = %d after Seed, want 4", s.Len())
	}
	if _, ok := s.Get(Key{JobID: "j4", StepID: "0", Node: "n2"}); !ok {
		t.Error("seeded newest-group record missing after prune")
	}

	var buf bytes.Buffer
	if err := set.Reg().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"goear_accounting_pruned_total 6",
		"goear_accounting_records 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("telemetry missing %q in:\n%s", want, text)
		}
	}

	// Lifting the cap stops eviction.
	s.SetMaxRecords(0)
	if _, err := s.Insert(windowRecord(t, "j5", "0", "n0", 540, 600)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d with the cap lifted, want 5", s.Len())
	}
}

// buildStore populates n jobs × m nodes for the query tests.
func buildStore(t testing.TB, jobs, nodes int) *Store {
	s := NewStore(nil)
	users := []string{"alice", "bob", "carol"}
	for j := 0; j < jobs; j++ {
		for n := 0; n < nodes; n++ {
			r, err := NewRecord(
				Meta{JobID: fmt.Sprintf("job%d", j), StepID: "0", User: users[j%len(users)]},
				Window{Node: fmt.Sprintf("node%03d", n), StartSec: float64(60 * j), EndSec: float64(60 * (j + 1))},
				Energy{PkgJ: 1000, DramJ: 100, UncoreJ: 50, NodeJ: 1300},
				Rates{AvgCPUGHz: 2.1, AvgIMCGHz: 2.4},
			)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

func TestQueryPaginationWalksEverything(t *testing.T) {
	s := buildStore(t, 6, 40) // 240 records: three pages at the default size
	full, err := s.Query(Query{Limit: MaxPageSize})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Records) != 240 || full.Total != 240 || full.Next != "" {
		t.Fatalf("full listing: %d records, total %d, next %q", len(full.Records), full.Total, full.Next)
	}
	walked, err := Walk(s.Query, Query{Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(full.Records)
	b, _ := json.Marshal(walked)
	if !bytes.Equal(a, b) {
		t.Fatal("paged walk differs from the one-shot listing")
	}
}

func TestQueryFilters(t *testing.T) {
	s := buildStore(t, 6, 10)
	byUser, err := s.Query(Query{User: "alice", Limit: MaxPageSize})
	if err != nil {
		t.Fatal(err)
	}
	if byUser.Total != 20 { // jobs 0 and 3 of 6
		t.Errorf("alice total = %d, want 20", byUser.Total)
	}
	for _, r := range byUser.Records {
		if r.User != "alice" {
			t.Fatalf("user filter leaked %q", r.User)
		}
	}
	byJob, err := s.Query(Query{Job: "job2", Limit: MaxPageSize})
	if err != nil {
		t.Fatal(err)
	}
	if byJob.Total != 10 {
		t.Errorf("job2 total = %d, want 10", byJob.Total)
	}
	// since drops windows ending at or before the mark: jobs 0-2 end by
	// t=180, jobs 3-5 remain.
	since, err := s.Query(Query{Since: 180, Limit: MaxPageSize})
	if err != nil {
		t.Fatal(err)
	}
	if since.Total != 30 {
		t.Errorf("since total = %d, want 30", since.Total)
	}
	if _, err := s.Query(Query{Cursor: "*bad*"}); err == nil {
		t.Error("Query accepted a garbage cursor")
	}
	empty, err := s.Query(Query{User: "nobody"})
	if err != nil {
		t.Fatal(err)
	}
	if empty.Records == nil || len(empty.Records) != 0 {
		t.Errorf("empty page must be non-nil and empty, got %#v", empty.Records)
	}
}

func TestQueryLimitClamping(t *testing.T) {
	s := buildStore(t, 3, 50) // 150 records
	p, err := s.Query(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Records) != DefaultPageSize || p.Next == "" {
		t.Errorf("default page: %d records, next %q", len(p.Records), p.Next)
	}
	p, err = s.Query(Query{Limit: MaxPageSize * 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Records) != 150 {
		t.Errorf("over-limit page returned %d records", len(p.Records))
	}
}

func TestHTTPHandler(t *testing.T) {
	s := buildStore(t, 3, 5)
	h := Handler(s.Query)

	req := httptest.NewRequest("GET", "/api/jobs?user=alice&limit=3", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var page Page
	if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Records) != 3 || page.Total != 5 || page.Next == "" {
		t.Errorf("page: %d records, total %d, next %q", len(page.Records), page.Total, page.Next)
	}

	// Following the cursor yields the remainder.
	req = httptest.NewRequest("GET", "/api/jobs?user=alice&limit=3&cursor="+page.Next, nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var rest Page
	if err := json.Unmarshal(w.Body.Bytes(), &rest); err != nil {
		t.Fatal(err)
	}
	if len(rest.Records) != 2 || rest.Next != "" {
		t.Errorf("second page: %d records, next %q", len(rest.Records), rest.Next)
	}

	for _, bad := range []string{"/api/jobs?limit=x", "/api/jobs?since=x", "/api/jobs?cursor=*bad*"} {
		w = httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", bad, nil))
		if w.Code != 400 {
			t.Errorf("%s: status %d, want 400", bad, w.Code)
		}
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/api/jobs", nil))
	if w.Code != 405 {
		t.Errorf("POST: status %d, want 405", w.Code)
	}
}

// BenchmarkJobQuery is the pinned query-path benchmark: a filtered,
// paginated read against a warm snapshot, the steady-state serving
// cost of the accounting tier.
func BenchmarkJobQuery(b *testing.B) {
	s := buildStore(b, 30, 100) // 3000 records
	s.Snapshot()                // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := s.Query(Query{User: "alice", Limit: DefaultPageSize})
		if err != nil {
			b.Fatal(err)
		}
		if len(p.Records) != DefaultPageSize {
			b.Fatalf("page of %d", len(p.Records))
		}
	}
}
