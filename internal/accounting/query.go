package accounting

import "fmt"

// Page-size bounds: a query asking for nothing gets DefaultPageSize
// records, and nobody gets more than MaxPageSize per round trip — the
// read tier is sized for many small queries, not bulk export (the
// records dump query is the bulk path).
const (
	DefaultPageSize = 100
	MaxPageSize     = 1000
)

// Query filters and paginates job records. All filters are
// conjunctive; zero values mean "no constraint".
type Query struct {
	// User restricts to one job owner (the multi-tenant axis).
	User string `json:"user,omitempty"`
	// Job restricts to one job ID.
	Job string `json:"job,omitempty"`
	// Since drops windows that ended at or before this time.
	Since float64 `json:"since,omitempty"`
	// Limit caps the page size (DefaultPageSize when 0, MaxPageSize
	// ceiling).
	Limit int `json:"limit,omitempty"`
	// Cursor resumes a walk after the key a previous page's Next
	// named. Empty starts from the beginning.
	Cursor string `json:"cursor,omitempty"`
}

// Page is one query result: the matching records in canonical order,
// the cursor for the next page (empty when the walk is done), and the
// total match count across all pages.
type Page struct {
	Records []Record `json:"records"`
	Next    string   `json:"next,omitempty"`
	Total   int      `json:"total"`
}

// match reports whether r passes q's filters.
func (q Query) match(r Record) bool {
	if q.User != "" && r.User != q.User {
		return false
	}
	if q.Job != "" && r.JobID != q.Job {
		return false
	}
	if q.Since != 0 && r.EndSec <= q.Since {
		return false
	}
	return true
}

// PageRecords evaluates q over a canonical (Key-ordered) snapshot.
// Pure: same snapshot + same query ⇒ same page, bytes included, which
// is what makes pages interchangeable between a shard daemon and a
// federation root holding the same merged state.
func PageRecords(snap []Record, q Query) (Page, error) {
	limit := q.Limit
	switch {
	case limit <= 0:
		limit = DefaultPageSize
	case limit > MaxPageSize:
		limit = MaxPageSize
	}
	var after Key
	skipping := false
	if q.Cursor != "" {
		k, err := DecodeCursor(q.Cursor)
		if err != nil {
			return Page{}, err
		}
		after = k
		skipping = true
	}
	page := Page{Records: []Record{}}
	more := false
	for _, r := range snap {
		if !q.match(r) {
			continue
		}
		page.Total++
		if skipping && !after.Less(r.Key()) {
			continue
		}
		if len(page.Records) < limit {
			page.Records = append(page.Records, r)
		} else {
			more = true
		}
	}
	if more {
		page.Next = EncodeCursor(page.Records[len(page.Records)-1].Key())
	}
	return page, nil
}

// Walk pages through q until exhaustion and returns the concatenated
// records — the convenience the CLI's -all flag and tests use. The
// per-call limit still applies per page.
func Walk(query func(Query) (Page, error), q Query) ([]Record, error) {
	var out []Record
	for {
		page, err := query(q)
		if err != nil {
			return nil, fmt.Errorf("accounting: walk: %w", err)
		}
		out = append(out, page.Records...)
		if page.Next == "" {
			return out, nil
		}
		q.Cursor = page.Next
	}
}
