package accounting

import "fmt"

// Usage carries one tenant's usage counters over a window — the
// evidence the ratio model splits energy by.
type Usage struct {
	// Instr is retired instructions (work share).
	Instr float64
	// Cycles is unhalted core cycles (occupancy share).
	Cycles float64
	// DRAMBytes is memory traffic (bandwidth share).
	DRAMBytes float64
}

// Tenant is one job resident on a node during a window.
type Tenant struct {
	Meta  Meta
	Usage Usage
	Rates Rates
}

// shares splits total across weights w, conserving the sum: every
// entry but the last positive-weight one gets total*w/sum, and the
// last positive-weight entry gets the remainder, so the split re-adds
// to total to within one ulp regardless of how the divisions round.
// All-zero (or negative-clamped) weights fall back to an equal split.
func shares(total float64, w []float64) []float64 {
	out := make([]float64, len(w))
	if len(w) == 0 {
		return out
	}
	var sum float64
	last := -1
	for i, x := range w {
		if x > 0 {
			sum += x
			last = i
		}
	}
	if last < 0 {
		// No evidence to split by: equal shares, remainder to the last.
		var acc float64
		n := float64(len(w))
		for i := range out {
			if i == len(out)-1 {
				out[i] = total - acc
				break
			}
			out[i] = total / n
			acc += out[i]
		}
		return out
	}
	var acc float64
	for i, x := range w {
		if x <= 0 {
			continue
		}
		if i == last {
			// Clamp: rounding can push acc a fraction of an ulp past
			// total, and a -1e-13 J share would fail validation.
			if out[i] = total - acc; out[i] < 0 {
				out[i] = 0
			}
			break
		}
		out[i] = total * (x / sum)
		acc += out[i]
	}
	return out
}

// pick returns the first usage-counter column with any positive
// evidence, so each domain degrades gracefully when a counter is
// missing (e.g. no DRAM-bandwidth events): DRAM traffic falls back to
// cycles, cycles to instructions.
func pick(cols ...[]float64) []float64 {
	for _, c := range cols {
		for _, v := range c {
			if v > 0 {
				return c
			}
		}
	}
	return cols[len(cols)-1]
}

// Attribute ratio-splits a node window's measured per-domain energy
// across the resident tenants by their usage counters, the Kepler
// GetPowerFromUsageRatio model applied per domain:
//
//   - PKG energy follows the cycle share (occupancy of the socket),
//     falling back to the instruction share;
//   - DRAM energy follows the memory-traffic share, falling back to
//     instructions;
//   - uncore energy (the mesh/IMC slice of PKG) follows memory
//     traffic, falling back to cycles — the uncore works for whoever
//     moves data;
//   - node (DC meter) energy follows the instruction share: static and
//     board power is charged in proportion to useful work, as Kepler
//     charges idle power by dynamic ratio.
//
// Each domain conserves: the returned records' joules sum back to the
// window totals to within one ulp. The tenant order is preserved, and
// the result depends only on the inputs — no clocks, no maps — so two
// daemons attributing the same window emit byte-identical records.
func Attribute(w Window, total Energy, tenants []Tenant) ([]Record, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("accounting: attribute %s phase %d: no tenants", w.Node, w.Phase)
	}
	instr := make([]float64, len(tenants))
	cycles := make([]float64, len(tenants))
	traffic := make([]float64, len(tenants))
	for i, t := range tenants {
		instr[i] = t.Usage.Instr
		cycles[i] = t.Usage.Cycles
		traffic[i] = t.Usage.DRAMBytes
	}
	pkg := shares(total.PkgJ, pick(cycles, instr))
	dram := shares(total.DramJ, pick(traffic, instr))
	uncore := shares(total.UncoreJ, pick(traffic, cycles))
	node := shares(total.NodeJ, pick(instr, cycles))

	out := make([]Record, 0, len(tenants))
	for i, t := range tenants {
		rec, err := NewRecord(t.Meta, w, Energy{
			PkgJ:    pkg[i],
			DramJ:   dram[i],
			UncoreJ: uncore[i],
			NodeJ:   node[i],
		}, t.Rates)
		if err != nil {
			return nil, fmt.Errorf("accounting: attribute %s phase %d tenant %d: %w", w.Node, w.Phase, i, err)
		}
		out = append(out, rec)
	}
	return out, nil
}
