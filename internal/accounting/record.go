// Package accounting implements EAR's per-job energy attribution: the
// "what did my job cost" half of the accounting pillar. Node-level
// measurements (RAPL PKG/DRAM, the uncore share of PKG, and the DC
// node meter) are ratio-split across the jobs resident on the node by
// their usage counters — the Kepler model of power attribution — into
// per-job, per-phase records that persist through the EARDBD tier and
// serve a read-optimised multi-tenant query API.
//
// The package is deliberately low in the dependency tree (stdlib plus
// telemetry) so the wire codec, the daemons and the simulator can all
// speak Record without cycles.
package accounting

import (
	"encoding/base64"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// CodecVersion is the job-record codec version. NewRecord stamps it;
// Validate refuses any other value, so a fixture hand-rolling records
// (or a peer speaking an older layout) fails loudly at the boundary
// instead of silently storing skewed rows.
const CodecVersion = 1

// Meta identifies the job a record attributes energy to.
type Meta struct {
	// JobID and StepID key the job the way eard.JobRecord does.
	JobID  string
	StepID string
	// User owns the job; the multi-tenant query tier filters on it.
	User string
	// Policy is the energy policy the job ran under (optional).
	Policy string
}

// Window is the node-time slice a record covers: one phase of one
// node's execution.
type Window struct {
	Node     string
	Phase    int
	StartSec float64
	EndSec   float64
}

// Energy is a per-domain joule breakdown. UncoreJ is the uncore share
// of PkgJ (RAPL PCK scope includes it); NodeJ is the DC node meter
// scope, the superset.
type Energy struct {
	PkgJ    float64
	DramJ   float64
	UncoreJ float64
	NodeJ   float64
}

// Rates carries the averaged operating frequencies over the window.
type Rates struct {
	AvgCPUGHz float64
	AvgIMCGHz float64
}

// Record is one job's attributed energy over one phase window on one
// node: the unit the accounting tier stores, ships and serves.
// Construct records with NewRecord — the codec version and validation
// live there, and the goearvet fixture analyzer flags hand-rolled
// literals in test-helper packages.
type Record struct {
	V         int     `json:"v"`
	JobID     string  `json:"job_id"`
	StepID    string  `json:"step_id"`
	User      string  `json:"user"`
	Node      string  `json:"node"`
	Policy    string  `json:"policy,omitempty"`
	Phase     int     `json:"phase"`
	StartSec  float64 `json:"start_sec"`
	EndSec    float64 `json:"end_sec"`
	PkgJ      float64 `json:"pkg_j"`
	DramJ     float64 `json:"dram_j"`
	UncoreJ   float64 `json:"uncore_j"`
	NodeJ     float64 `json:"node_j"`
	AvgCPUGHz float64 `json:"avg_cpu_ghz"`
	AvgIMCGHz float64 `json:"avg_imc_ghz"`
}

// NewRecord builds a versioned record from its parts and validates it.
func NewRecord(m Meta, w Window, e Energy, r Rates) (Record, error) {
	rec := Record{
		V:         CodecVersion,
		JobID:     m.JobID,
		StepID:    m.StepID,
		User:      m.User,
		Node:      w.Node,
		Policy:    m.Policy,
		Phase:     w.Phase,
		StartSec:  w.StartSec,
		EndSec:    w.EndSec,
		PkgJ:      e.PkgJ,
		DramJ:     e.DramJ,
		UncoreJ:   e.UncoreJ,
		NodeJ:     e.NodeJ,
		AvgCPUGHz: r.AvgCPUGHz,
		AvgIMCGHz: r.AvgIMCGHz,
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// Validate reports whether the record is well-formed at the current
// codec version.
func (r Record) Validate() error {
	switch {
	case r.V != CodecVersion:
		return fmt.Errorf("accounting: record codec version %d, this side speaks %d", r.V, CodecVersion)
	case r.JobID == "":
		return fmt.Errorf("accounting: record has no job id")
	case r.StepID == "":
		return fmt.Errorf("accounting: record %s has no step id", r.JobID)
	case r.User == "":
		return fmt.Errorf("accounting: record %s/%s has no user", r.JobID, r.StepID)
	case r.Node == "":
		return fmt.Errorf("accounting: record %s/%s has no node", r.JobID, r.StepID)
	case r.Phase < 0:
		return fmt.Errorf("accounting: record %s/%s has negative phase %d", r.JobID, r.StepID, r.Phase)
	case r.EndSec < r.StartSec:
		return fmt.Errorf("accounting: record %s/%s window ends (%g) before it starts (%g)", r.JobID, r.StepID, r.EndSec, r.StartSec)
	}
	for _, v := range []float64{r.StartSec, r.EndSec, r.PkgJ, r.DramJ, r.UncoreJ, r.NodeJ, r.AvgCPUGHz, r.AvgIMCGHz} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("accounting: record %s/%s carries a non-finite value", r.JobID, r.StepID)
		}
	}
	if r.PkgJ < 0 || r.DramJ < 0 || r.UncoreJ < 0 || r.NodeJ < 0 {
		return fmt.Errorf("accounting: record %s/%s carries negative energy", r.JobID, r.StepID)
	}
	return nil
}

// Key is a record's identity: the store holds at most one record per
// (job, step, node, phase), and the canonical sort order — the order
// snapshots, merges and pages all share — is the Key order.
type Key struct {
	JobID  string
	StepID string
	Node   string
	Phase  int
}

// Key returns the record's identity.
func (r Record) Key() Key {
	return Key{JobID: r.JobID, StepID: r.StepID, Node: r.Node, Phase: r.Phase}
}

// Less orders keys canonically: (job, step, node, phase).
func (k Key) Less(o Key) bool {
	if k.JobID != o.JobID {
		return k.JobID < o.JobID
	}
	if k.StepID != o.StepID {
		return k.StepID < o.StepID
	}
	if k.Node != o.Node {
		return k.Node < o.Node
	}
	return k.Phase < o.Phase
}

// cursorSep separates cursor fields before encoding; it cannot appear
// in IDs that survive Validate (it is a control character, and even if
// an ID carried it the decode would merely mis-split and miss — the
// cursor contract is "resume after this key", never correctness of the
// underlying data).
const cursorSep = "\x1f"

// EncodeCursor renders a pagination cursor naming the last-returned
// key. Cursors are opaque to clients and stable across daemons: the
// same key encodes identically everywhere, which is what lets a page
// walk hop between a shard daemon and a federation root mid-flight.
func EncodeCursor(k Key) string {
	raw := strings.Join([]string{k.JobID, k.StepID, k.Node, strconv.Itoa(k.Phase)}, cursorSep)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// DecodeCursor parses a cursor back into the key it names.
func DecodeCursor(s string) (Key, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return Key{}, fmt.Errorf("accounting: bad cursor: %w", err)
	}
	parts := strings.Split(string(raw), cursorSep)
	if len(parts) != 4 {
		return Key{}, fmt.Errorf("accounting: bad cursor: %d fields", len(parts))
	}
	phase, err := strconv.Atoi(parts[3])
	if err != nil {
		return Key{}, fmt.Errorf("accounting: bad cursor phase: %w", err)
	}
	return Key{JobID: parts[0], StepID: parts[1], Node: parts[2], Phase: phase}, nil
}
