package accounting

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// QueryFunc answers one job query; Handler is agnostic about whether
// it is backed by a local store or a federation root's merged view.
type QueryFunc func(Query) (Page, error)

// Handler serves the job-accounting HTTP JSON API: GET with optional
// user, job, since, limit and cursor query parameters, answering a
// Page. It mounts next to /metrics on the daemon's telemetry mux so
// the read tier and its instruments share one port.
func Handler(fn QueryFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		q := Query{
			User:   r.URL.Query().Get("user"),
			Job:    r.URL.Query().Get("job"),
			Cursor: r.URL.Query().Get("cursor"),
		}
		if s := r.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad since: "+err.Error())
				return
			}
			q.Since = v
		}
		if s := r.URL.Query().Get("limit"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad limit: "+err.Error())
				return
			}
			q.Limit = v
		}
		page, err := fn(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(page) // the connection is the only failure mode
	})
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
