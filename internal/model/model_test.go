package model

import (
	"encoding/json"
	"math"
	"testing"

	"goear/internal/cpu"
	"goear/internal/mem"
	"goear/internal/metrics"
	"goear/internal/perf"
	"goear/internal/power"
)

func trainSD530(t *testing.T) *Model {
	t.Helper()
	m, err := TrainForCPU(
		perf.Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()},
		power.SD530Coeffs())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainProducesValidModel(t *testing.T) {
	m := trainSD530(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.PstateCount() != cpu.XeonGold6148().PstateCount() {
		t.Errorf("pstates = %d, want %d", m.PstateCount(), cpu.XeonGold6148().PstateCount())
	}
	// The paper's example: AVX512 pstate is 3 (2.2 GHz) on the 6148.
	if m.AVX512Pstate != 3 {
		t.Errorf("AVX512 pstate = %d, want 3", m.AVX512Pstate)
	}
	if math.Abs(m.FreqGHz[1]-2.4) > 1e-9 {
		t.Errorf("nominal pstate freq = %v, want 2.4", m.FreqGHz[1])
	}
}

func TestIdentityProjectionIsNearExact(t *testing.T) {
	m := trainSD530(t)
	sig := metrics.Signature{IterTimeSec: 1.0, CPI: 0.8, TPI: 0.02, DCPowerW: 330}
	p, err := m.Predict(sig, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.TimeSec-1.0) > 0.02 {
		t.Errorf("identity time = %v, want ~1", p.TimeSec)
	}
	if math.Abs(p.CPI-0.8) > 0.02 {
		t.Errorf("identity CPI = %v, want ~0.8", p.CPI)
	}
	if math.Abs(p.PowerW-330) > 8 {
		t.Errorf("identity power = %v, want ~330", p.PowerW)
	}
}

func TestPredictionsMatchSimulatorAcrossPstates(t *testing.T) {
	// Held-out phases (not in the probe grid): the trained model must
	// predict the simulator's CPI and relative time within a few
	// percent — the fidelity EAR's real learning phase achieves.
	machine := perf.Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()}
	pw := power.SD530Coeffs()
	m := trainSD530(t)

	phases := []struct {
		ph  perf.Phase
		act float64
	}{
		{perf.Phase{BaseCPI: 0.38, BytesPerInstr: 0.8, Overlap: 0.8, ActiveCores: 40}, 1.1},
		{perf.Phase{BaseCPI: 0.9, BytesPerInstr: 4, Overlap: 0.93, ActiveCores: 40}, 0.8},
	}
	for _, tc := range phases {
		fromRatio, _ := machine.CPU.PstateRatio(1)
		r1, err := perf.Evaluate(machine, tc.ph, perf.Operating{CoreRatio: fromRatio, UncoreRatio: 24})
		if err != nil {
			t.Fatal(err)
		}
		b1, err := pw.Node(power.Input{
			CoreFreqGHz: r1.EffCoreFreq.GHzF(), UncoreFreqGHz: 2.4,
			Sockets: 2, ActiveCores: 40, Activity: tc.act, GBs: r1.NodeGBs,
		})
		if err != nil {
			t.Fatal(err)
		}
		sig := metrics.Signature{
			IterTimeSec: 1.0, CPI: r1.CPI,
			TPI: tc.ph.BytesPerInstr / perf.CacheLineBytes,
			GBs: r1.NodeGBs, DCPowerW: b1.Total,
		}
		// Tolerance grows with projection distance: EAR's linear
		// per-pair model is approximate far from the source pstate.
		tols := map[int]float64{2: 0.05, 4: 0.07, 8: 0.12, 12: 0.20}
		for _, to := range []int{2, 4, 8, 12} {
			toRatio, _ := machine.CPU.PstateRatio(to)
			r2, err := perf.Evaluate(machine, tc.ph, perf.Operating{CoreRatio: toRatio, UncoreRatio: 24})
			if err != nil {
				t.Fatal(err)
			}
			pred, err := m.Predict(sig, 1, to)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(pred.CPI-r2.CPI) / r2.CPI; rel > tols[to] {
				t.Errorf("to=%d: CPI prediction off by %.1f%% (%v vs %v)",
					to, rel*100, pred.CPI, r2.CPI)
			}
			trueTimeRatio := r2.SecPerInstr / r1.SecPerInstr
			if rel := math.Abs(pred.TimeSec-trueTimeRatio) / trueTimeRatio; rel > tols[to] {
				t.Errorf("to=%d: time prediction off by %.1f%% (%v vs %v)",
					to, rel*100, pred.TimeSec, trueTimeRatio)
			}
		}
	}
}

func TestAVX512ModelCapsBenefit(t *testing.T) {
	m := trainSD530(t)
	// A pure-AVX512 signature at pstate 3 (the licence): predictions
	// for pstates 1..3 must be identical (no benefit above the
	// licence), and the pre-extension model must (wrongly) predict a
	// speedup — the difference the paper's extension exists to fix.
	sig := metrics.Signature{IterTimeSec: 1.0, CPI: 0.45, TPI: 0.005, DCPowerW: 369, VPI: 1}
	p1, err := m.Predict(sig, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := m.Predict(sig, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1.TimeSec-p3.TimeSec) > 1e-9 {
		t.Errorf("AVX512 prediction differs above licence: %v vs %v", p1.TimeSec, p3.TimeSec)
	}
	d1, err := m.PredictDefault(sig, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d1.TimeSec >= p3.TimeSec {
		t.Errorf("default model should (wrongly) predict speedup above licence: %v vs %v",
			d1.TimeSec, p3.TimeSec)
	}
}

func TestAVX512BlendIsWeighted(t *testing.T) {
	m := trainSD530(t)
	sig := metrics.Signature{IterTimeSec: 1.0, CPI: 0.5, TPI: 0.02, DCPowerW: 340}
	sigHalf := sig
	sigHalf.VPI = 0.5
	pure, err := m.Predict(sig, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sigAvx := sig
	sigAvx.VPI = 1
	avx, err := m.Predict(sigAvx, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := m.Predict(sigHalf, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := (pure.TimeSec + avx.TimeSec) / 2
	if math.Abs(half.TimeSec-want) > 1e-9 {
		t.Errorf("blended time = %v, want %v", half.TimeSec, want)
	}
}

func TestPredictErrors(t *testing.T) {
	m := trainSD530(t)
	good := metrics.Signature{IterTimeSec: 1, CPI: 0.5, TPI: 0.01, DCPowerW: 300}
	if _, err := m.Predict(good, -1, 0); err == nil {
		t.Error("expected error for negative pstate")
	}
	if _, err := m.Predict(good, 0, m.PstateCount()); err == nil {
		t.Error("expected error for out-of-range target")
	}
	bad := good
	bad.CPI = 0
	if _, err := m.Predict(bad, 0, 1); err == nil {
		t.Error("expected error for zero CPI")
	}
	bad = good
	bad.IterTimeSec = 0
	if _, err := m.PredictDefault(bad, 0, 1); err == nil {
		t.Error("expected error for zero time")
	}
}

func TestTrainErrors(t *testing.T) {
	machine := perf.Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()}
	if _, err := Train(TrainConfig{
		Machine: machine, Power: power.SD530Coeffs(),
		Probes: DefaultProbes(40)[:2],
	}); err == nil {
		t.Error("expected error for too few probes")
	}
	badM := machine
	badM.CPU.Sockets = 0
	if _, err := Train(TrainConfig{Machine: badM, Power: power.SD530Coeffs()}); err == nil {
		t.Error("expected error for invalid machine")
	}
	badP := power.SD530Coeffs()
	badP.PkgBase = -1
	if _, err := Train(TrainConfig{Machine: machine, Power: badP}); err == nil {
		t.Error("expected error for invalid power coefficients")
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := trainSD530(t)
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.AVX512Pstate != m.AVX512Pstate || len(back.FreqGHz) != len(m.FreqGHz) {
		t.Error("round trip lost structure")
	}
	if back.Pairs[1][5] != m.Pairs[1][5] {
		t.Error("round trip lost coefficients")
	}
	// Corrupt payload fails validation.
	var bad Model
	if err := json.Unmarshal([]byte(`{"freq_ghz":[],"avx512_pstate":0,"pairs":[]}`), &bad); err == nil {
		t.Error("expected validation error for empty model")
	}
}

func TestAccuracy(t *testing.T) {
	m := trainSD530(t)
	machine := perf.Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()}
	ph := perf.Phase{BaseCPI: 0.6, BytesPerInstr: 1.5, Overlap: 0.85, ActiveCores: 40}
	fromRatio, _ := machine.CPU.PstateRatio(1)
	r1, err := perf.Evaluate(machine, ph, perf.Operating{CoreRatio: fromRatio, UncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	sig := metrics.Signature{IterTimeSec: 1, CPI: r1.CPI, TPI: ph.BytesPerInstr / 64, DCPowerW: 330}
	var samples []AccuracySample
	for to := 2; to < 10; to++ {
		toRatio, _ := machine.CPU.PstateRatio(to)
		r2, err := perf.Evaluate(machine, ph, perf.Operating{CoreRatio: toRatio, UncoreRatio: 24})
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, AccuracySample{Sig: sig, From: 1, To: to, TrueCPI: r2.CPI})
	}
	mae, err := m.Accuracy(samples)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 0.05 {
		t.Errorf("mean CPI error = %.1f%%, want < 5%%", mae*100)
	}
	if _, err := m.Accuracy(nil); err == nil {
		t.Error("expected error for no samples")
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	m := trainSD530(t)
	cases := []func(*Model){
		func(m *Model) { m.FreqGHz = nil },
		func(m *Model) { m.Pairs = m.Pairs[:3] },
		func(m *Model) { m.Pairs[2] = m.Pairs[2][:1] },
		func(m *Model) { m.AVX512Pstate = -1 },
		func(m *Model) { m.AVX512Pstate = 99 },
		func(m *Model) { m.FreqGHz[0] = 0 },
	}
	for i, mut := range cases {
		c := trainSD530(t)
		mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
		_ = m
	}
}

func TestAVX512PstatePerPlatform(t *testing.T) {
	cases := []struct {
		cpuModel cpu.Model
		want     int
	}{
		{cpu.XeonGold6148(), 3},  // 2.4 nominal, 2.2 licence
		{cpu.XeonGold6142M(), 5}, // 2.6 nominal, 2.2 licence
		{cpu.XeonGold6252(), 6},  // 2.1 nominal, 1.6 licence
	}
	for _, c := range cases {
		m, err := TrainForCPU(
			perf.Machine{CPU: c.cpuModel, Mem: mem.DDR4SD530()},
			power.SD530Coeffs())
		if err != nil {
			t.Fatalf("%s: %v", c.cpuModel.Name, err)
		}
		if m.AVX512Pstate != c.want {
			t.Errorf("%s: AVX512 pstate = %d, want %d", c.cpuModel.Name, m.AVX512Pstate, c.want)
		}
	}
}
