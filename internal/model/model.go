// Package model implements EAR's energy models: given the application
// signature measured at one CPU pstate, they predict iteration time and
// DC node power at any other pstate. The policies rank pstates with
// these predictions.
//
// The core follows Bell/Brochard (US8527997B2): per (from, to) pstate
// pair, linear projections
//
//	CPI(to)   = A·CPI(from) + B·TPI + C
//	Power(to) = D·Power(from) + E·TPI + F
//	Time(to)  = Time(from) · (CPI(to)·f(from)) / (CPI(from)·f(to))
//
// whose coefficients EAR learns per architecture in an offline phase.
// Two refinements (both derived from signature-visible quantities, as
// EAR's per-phase-classified models are):
//
//   - coefficients are fitted per memory-utilisation class (the GB/s
//     share of the node's memory capability), because latency-bound and
//     bandwidth-bound phases respond differently to frequency; and
//   - predicted time is clamped by the bandwidth roofline: no frequency
//     can push the phase's achieved bandwidth beyond the memory
//     subsystem's saturated capability, so Time(to) is at least
//     Time(from)·GBs(from)/SatGBs.
//
// In this repository the learning phase (Train) runs probe workloads
// through the simulator's execution and power models across all pstate
// pairs and fits the coefficients by least squares — mirroring how EAR
// trains against kernels on real nodes.
//
// The AVX512 model (the paper's §V-A extension) combines the default
// prediction at the requested pstate with one whose pstates are limited
// to the all-core AVX512 licence pstate, weighted by the signature's
// AVX512 fraction (VPI). It captures the fact that AVX512 code cannot
// benefit from frequencies above the licence.
package model

import (
	"encoding/json"
	"fmt"
	"math"

	"goear/internal/cpu"
	"goear/internal/metrics"
	"goear/internal/stats"
	"goear/internal/units"
)

// NumClasses is the number of memory-utilisation classes.
const NumClasses = 3

// Utilisation class boundaries (fraction of memory capability).
const (
	classLowMax = 0.2
	classMidMax = 0.5
)

// LinCoeffs are linear projection coefficients for one class of one
// (from, to) pstate pair.
type LinCoeffs struct {
	A, B, C float64 // CPI projection
	D, E, F float64 // power projection
}

// PairCoeffs holds the per-class coefficients of one pstate pair.
type PairCoeffs struct {
	ByClass [NumClasses]LinCoeffs
}

// Model is a trained per-architecture energy model.
type Model struct {
	// FreqGHz is the target frequency of each pstate (index 0 = turbo).
	FreqGHz []float64
	// AVX512Pstate is the pstate of the all-core AVX512 licence
	// frequency (3 on the paper's Xeon 6148: 2.2 GHz).
	AVX512Pstate int
	// CapGBs is the node memory capability at the maximum uncore
	// frequency; SatGBs the saturated achievable bandwidth.
	CapGBs float64
	SatGBs float64
	// Pairs[from][to] holds the projection coefficients.
	Pairs [][]PairCoeffs
}

// Prediction is a projected operating point.
type Prediction struct {
	TimeSec float64
	PowerW  float64
	CPI     float64
}

// Validate reports whether the model is structurally sound.
func (m *Model) Validate() error {
	n := len(m.FreqGHz)
	if n == 0 {
		return fmt.Errorf("model: empty pstate table")
	}
	if len(m.Pairs) != n {
		return fmt.Errorf("model: %d pair rows for %d pstates", len(m.Pairs), n)
	}
	for i, row := range m.Pairs {
		if len(row) != n {
			return fmt.Errorf("model: pair row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if m.AVX512Pstate < 0 || m.AVX512Pstate >= n {
		return fmt.Errorf("model: AVX512 pstate %d outside table", m.AVX512Pstate)
	}
	if m.CapGBs <= 0 || m.SatGBs <= 0 || m.SatGBs > m.CapGBs {
		return fmt.Errorf("model: bandwidth capability (%g, %g) invalid", m.CapGBs, m.SatGBs)
	}
	for i, f := range m.FreqGHz {
		if f <= 0 {
			return fmt.Errorf("model: pstate %d frequency %g invalid", i, f)
		}
	}
	return nil
}

// PstateCount returns the number of pstates the model covers.
func (m *Model) PstateCount() int { return len(m.FreqGHz) }

// ClassOf returns the memory-utilisation class of a bandwidth level.
func (m *Model) ClassOf(gbs float64) int {
	u := gbs / m.CapGBs
	switch {
	case u < classLowMax:
		return 0
	case u < classMidMax:
		return 1
	default:
		return 2
	}
}

// projectDefault applies the class-selected projection with the
// bandwidth-roofline clamp.
func (m *Model) projectDefault(sig metrics.Signature, from, to int) Prediction {
	c := m.Pairs[from][to].ByClass[m.ClassOf(sig.GBs)]
	cpi2 := c.A*sig.CPI + c.B*sig.TPI + c.C
	pow2 := c.D*sig.DCPowerW + c.E*sig.TPI + c.F
	f1, f2 := m.FreqGHz[from], m.FreqGHz[to]
	// Roofline: achieved bandwidth cannot exceed the saturated
	// capability at any frequency, which bounds CPI from below.
	if m.SatGBs > 0 && sig.GBs > 0 {
		if bw := sig.CPI * (f2 / f1) * (sig.GBs / m.SatGBs); cpi2 < bw {
			cpi2 = bw
		}
	}
	if cpi2 <= 0 {
		cpi2 = sig.CPI // degenerate fit guard
	}
	t2 := sig.IterTimeSec * (cpi2 * f1) / (sig.CPI * f2)
	return Prediction{TimeSec: t2, PowerW: pow2, CPI: cpi2}
}

// Predict projects the signature measured at pstate from onto pstate to
// using the AVX512-aware model: the default prediction and a prediction
// whose pstates are capped at the AVX512 licence are blended by VPI.
func (m *Model) Predict(sig metrics.Signature, from, to int) (Prediction, error) {
	if err := m.checkPstates(from, to); err != nil {
		return Prediction{}, err
	}
	if sig.CPI <= 0 || sig.IterTimeSec <= 0 {
		return Prediction{}, fmt.Errorf("model: signature lacks CPI or time")
	}
	def := m.projectDefault(sig, from, to)
	if sig.VPI <= 0 {
		return def, nil
	}
	// AVX512 branch: the cores cannot run faster than the licence
	// pstate, so cap the target (higher pstate index = lower
	// frequency). The source is capped too: an AVX512-dominated
	// signature was measured under the licence even if a faster pstate
	// was requested.
	toAvx := to
	if toAvx < m.AVX512Pstate {
		toAvx = m.AVX512Pstate
	}
	fromAvx := from
	if fromAvx < m.AVX512Pstate {
		fromAvx = m.AVX512Pstate
	}
	avx := m.projectDefault(sig, fromAvx, toAvx)
	w := sig.VPI
	return Prediction{
		TimeSec: (1-w)*def.TimeSec + w*avx.TimeSec,
		PowerW:  (1-w)*def.PowerW + w*avx.PowerW,
		CPI:     (1-w)*def.CPI + w*avx.CPI,
	}, nil
}

// PredictDefault projects with the pre-extension model (no AVX512
// blending); kept for the A2 ablation experiment.
func (m *Model) PredictDefault(sig metrics.Signature, from, to int) (Prediction, error) {
	if err := m.checkPstates(from, to); err != nil {
		return Prediction{}, err
	}
	if sig.CPI <= 0 || sig.IterTimeSec <= 0 {
		return Prediction{}, fmt.Errorf("model: signature lacks CPI or time")
	}
	return m.projectDefault(sig, from, to), nil
}

// Table is a per-signature-window prediction lookup table: the
// projections of one measured signature from one source pstate onto
// every target pstate. The pstate-search policies evaluate the same
// (sig, from) pair against every candidate pstate — and the reference
// pstate twice — so they build a Table once per signature window and
// rank by lookup instead of re-projecting.
type Table struct {
	// From is the source pstate the entries were projected from.
	From int
	// Preds is indexed by target pstate.
	Preds []Prediction
}

// BuildTable fills dst with the prediction at every target pstate,
// reusing dst's backing storage across windows. Every entry is produced
// by the same Predict (or PredictDefault, when useAVX512 is false) call
// a direct evaluation would make, so table-driven policies are
// bit-identical to call-per-pstate policies.
func (m *Model) BuildTable(dst *Table, sig metrics.Signature, from int, useAVX512 bool) error {
	n := m.PstateCount()
	if cap(dst.Preds) < n {
		dst.Preds = make([]Prediction, n)
	} else {
		dst.Preds = dst.Preds[:n]
	}
	dst.From = from
	for to := 0; to < n; to++ {
		var (
			p   Prediction
			err error
		)
		if useAVX512 {
			p, err = m.Predict(sig, from, to)
		} else {
			p, err = m.PredictDefault(sig, from, to)
		}
		if err != nil {
			return err
		}
		dst.Preds[to] = p
	}
	return nil
}

func (m *Model) checkPstates(from, to int) error {
	if from < 0 || from >= len(m.FreqGHz) || to < 0 || to >= len(m.FreqGHz) {
		return fmt.Errorf("model: pstate pair (%d,%d) outside table of %d", from, to, len(m.FreqGHz))
	}
	return nil
}

// PstateTable builds the model frequency table from a CPU model: entry 0
// is the all-core turbo frequency, entry 1 the nominal, stepping down.
func PstateTable(c cpu.Model) []float64 {
	out := make([]float64, c.PstateCount())
	out[0] = units.FromRatio(c.TurboRatio, cpu.BusClock).GHzF()
	for p := 1; p < c.PstateCount(); p++ {
		out[p] = units.FromRatio(c.NominalRatio-uint64(p-1), cpu.BusClock).GHzF()
	}
	return out
}

// MarshalJSON / UnmarshalJSON give the model a stable on-disk format so
// a learning phase (cmd/earlearn) can persist coefficients.

type modelJSON struct {
	FreqGHz      []float64      `json:"freq_ghz"`
	AVX512Pstate int            `json:"avx512_pstate"`
	CapGBs       float64        `json:"cap_gbs"`
	SatGBs       float64        `json:"sat_gbs"`
	Pairs        [][]PairCoeffs `json:"pairs"`
}

// MarshalJSON implements json.Marshaler.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{m.FreqGHz, m.AVX512Pstate, m.CapGBs, m.SatGBs, m.Pairs})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Model) UnmarshalJSON(b []byte) error {
	var j modelJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	m.FreqGHz, m.AVX512Pstate, m.Pairs = j.FreqGHz, j.AVX512Pstate, j.Pairs
	m.CapGBs, m.SatGBs = j.CapGBs, j.SatGBs
	return m.Validate()
}

// Accuracy evaluates prediction quality: mean absolute relative error of
// the CPI projection over the provided (sig, from, to, trueCPI) tuples.
func (m *Model) Accuracy(samples []AccuracySample) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("model: no accuracy samples")
	}
	sum := 0.0
	for _, s := range samples {
		p, err := m.Predict(s.Sig, s.From, s.To)
		if err != nil {
			return 0, err
		}
		sum += math.Abs(p.CPI-s.TrueCPI) / s.TrueCPI
	}
	return sum / float64(len(samples)), nil
}

// AccuracySample is one held-out evaluation point.
type AccuracySample struct {
	Sig     metrics.Signature
	From    int
	To      int
	TrueCPI float64
}

// fitClass fits one utilisation class of one pstate pair.
func fitClass(cpiX [][]float64, cpiY []float64, powX [][]float64, powY []float64) (LinCoeffs, error) {
	cb, err := stats.LeastSquares(cpiX, cpiY)
	if err != nil {
		return LinCoeffs{}, fmt.Errorf("model: CPI fit: %w", err)
	}
	pb, err := stats.LeastSquares(powX, powY)
	if err != nil {
		return LinCoeffs{}, fmt.Errorf("model: power fit: %w", err)
	}
	return LinCoeffs{A: cb[0], B: cb[1], C: cb[2], D: pb[0], E: pb[1], F: pb[2]}, nil
}
