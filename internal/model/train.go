package model

import (
	"fmt"

	"goear/internal/cpu"
	"goear/internal/perf"
	"goear/internal/power"
	"goear/internal/units"
)

// TrainConfig describes the node the model is learned for.
type TrainConfig struct {
	Machine perf.Machine
	Power   power.Coeffs
	// Probes are the synthetic phases executed across pstate pairs;
	// when empty, DefaultProbes is used.
	Probes []Probe
}

// Probe is one training workload: an execution phase plus the power
// activity factor it runs with.
type Probe struct {
	Phase    perf.Phase
	Activity float64
}

// DefaultProbes spans the CPI/TPI/bandwidth space the paper's kernels
// and applications cover, like EAR's learning-phase kernel suite.
func DefaultProbes(activeCores int) []Probe {
	var out []Probe
	for _, baseCPI := range []float64{0.3, 0.45, 0.6, 1.0, 1.6} {
		for _, bpi := range []float64{0.02, 0.1, 0.3, 0.8, 2, 4, 6, 8} {
			for _, ov := range []float64{0.7, 0.85, 0.95, 0.985, 0.995} {
				for _, act := range []float64{0.7, 1.2} {
					out = append(out, Probe{
						Phase: perf.Phase{
							BaseCPI:       baseCPI,
							BytesPerInstr: bpi,
							Overlap:       ov,
							ActiveCores:   activeCores,
						},
						Activity: act,
					})
				}
			}
		}
	}
	return out
}

// trainSatCutoff excludes bandwidth-saturated endpoints from the linear
// fits: the roofline clamp covers that regime analytically.
const trainSatCutoff = 0.9

// Train runs the learning phase: every probe is evaluated at every
// pstate pair (uncore held at the hardware maximum, as EAR's
// CPU-frequency model assumes), and the per-class projection
// coefficients are fitted by least squares.
func Train(cfg TrainConfig) (*Model, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Power.Validate(); err != nil {
		return nil, err
	}
	probes := cfg.Probes
	if len(probes) == 0 {
		probes = DefaultProbes(cfg.Machine.CPU.TotalCores())
	}
	if len(probes) < 4*NumClasses {
		return nil, fmt.Errorf("model: need at least %d probes, got %d", 4*NumClasses, len(probes))
	}

	c := cfg.Machine.CPU
	n := c.PstateCount()
	fuMax := units.FromRatio(c.UncoreMaxRatio, cpu.BusClock)
	capGBs := cfg.Machine.Mem.CapabilityGBs(fuMax)
	m := &Model{
		FreqGHz:      PstateTable(c),
		AVX512Pstate: int(c.NominalRatio-c.AVX512Ratio) + 1,
		CapGBs:       capGBs,
		SatGBs:       capGBs * cfg.Machine.Mem.MaxUtilization,
		Pairs:        make([][]PairCoeffs, n),
	}

	// Pre-evaluate every probe at every pstate.
	type point struct {
		cpi, tpi, gbs, rho, pow float64
	}
	eval := make([][]point, n) // [pstate][probe]
	uncore := c.UncoreMaxRatio
	for p := 0; p < n; p++ {
		ratio, err := c.PstateRatio(p)
		if err != nil {
			return nil, err
		}
		eval[p] = make([]point, len(probes))
		for i, pr := range probes {
			r, err := perf.Evaluate(cfg.Machine, pr.Phase, perf.Operating{CoreRatio: ratio, UncoreRatio: uncore})
			if err != nil {
				return nil, fmt.Errorf("model: probe %d at pstate %d: %w", i, p, err)
			}
			b, err := cfg.Power.Node(power.Input{
				CoreFreqGHz:   r.EffCoreFreq.GHzF(),
				UncoreFreqGHz: r.UncoreFreq.GHzF(),
				Sockets:       c.Sockets,
				ActiveCores:   pr.Phase.ActiveCores,
				Activity:      pr.Activity,
				GBs:           r.NodeGBs,
			})
			if err != nil {
				return nil, fmt.Errorf("model: probe %d power at pstate %d: %w", i, p, err)
			}
			eval[p][i] = point{
				cpi: r.CPI,
				tpi: pr.Phase.BytesPerInstr / perf.CacheLineBytes,
				gbs: r.NodeGBs,
				rho: r.NodeGBs / capGBs,
				pow: b.Total,
			}
		}
	}

	for from := 0; from < n; from++ {
		m.Pairs[from] = make([]PairCoeffs, n)
		for to := 0; to < n; to++ {
			var cpiX, powX [NumClasses][][]float64
			var cpiY, powY [NumClasses][]float64
			for i := range probes {
				src, dst := eval[from][i], eval[to][i]
				if src.rho > trainSatCutoff || dst.rho > trainSatCutoff {
					continue
				}
				cl := m.ClassOf(src.gbs)
				cpiX[cl] = append(cpiX[cl], []float64{src.cpi, src.tpi, 1})
				cpiY[cl] = append(cpiY[cl], dst.cpi)
				powX[cl] = append(powX[cl], []float64{src.pow, src.tpi, 1})
				powY[cl] = append(powY[cl], dst.pow)
			}
			var pc PairCoeffs
			for cl := 0; cl < NumClasses; cl++ {
				if len(cpiY[cl]) < 4 {
					return nil, fmt.Errorf("model: pair (%d,%d) class %d has only %d samples",
						from, to, cl, len(cpiY[cl]))
				}
				lc, err := fitClass(cpiX[cl], cpiY[cl], powX[cl], powY[cl])
				if err != nil {
					return nil, fmt.Errorf("model: pair (%d,%d) class %d: %w", from, to, cl, err)
				}
				pc.ByClass[cl] = lc
			}
			m.Pairs[from][to] = pc
		}
	}
	return m, m.Validate()
}

// TrainForCPU is a convenience wrapper building the config from a CPU
// model, memory config and power coefficients with default probes.
func TrainForCPU(machine perf.Machine, pw power.Coeffs) (*Model, error) {
	return Train(TrainConfig{Machine: machine, Power: pw})
}
