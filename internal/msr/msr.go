// Package msr emulates the Intel Model Specific Registers that EAR uses
// to observe and steer a Skylake-SP socket. The register addresses and
// bit layouts match the Intel SDM so that the policy and actuation code
// in this repository is written exactly as it would be against /dev/msr.
//
// The package distinguishes two roles:
//
//   - software (EARL, the policies) reads and writes registers through
//     Read and Write, subject to the same writability rules as real
//     hardware (performance counters and energy counters are read-only);
//   - the simulated hardware updates counters through the *Hw methods,
//     which bypass the writability check.
package msr

import (
	"fmt"
	"sync/atomic"
)

// Architectural and model-specific register addresses (Intel SDM vol. 4).
const (
	IA32MPerf           uint32 = 0xE7  // TSC-rate reference cycles while unhalted
	IA32APerf           uint32 = 0xE8  // actual cycles while unhalted
	IA32PerfStatus      uint32 = 0x198 // current core ratio in bits 15:8
	IA32PerfCtl         uint32 = 0x199 // requested core ratio in bits 15:8
	IA32EnergyPerfBias  uint32 = 0x1B0 // EPB hint, 0 (perf) .. 15 (powersave)
	IA32FixedCtr0       uint32 = 0x309 // instructions retired
	IA32FixedCtr1       uint32 = 0x30A // core clock cycles unhalted
	IA32FixedCtr2       uint32 = 0x30B // reference clock cycles unhalted
	MSRRaplPowerUnit    uint32 = 0x606 // energy status units in bits 12:8
	MSRPkgEnergyStatus  uint32 = 0x611 // package energy, 32-bit accumulator
	MSRDramEnergyStatus uint32 = 0x619 // DRAM energy, 32-bit accumulator
	MSRUncoreRatioLimit uint32 = 0x620 // max ratio bits 6:0, min ratio bits 14:8
	MSRUncorePerfStatus uint32 = 0x621 // current uncore ratio in bits 6:0
)

// RatioUnitMHz is the granularity of core and uncore frequency ratios:
// one ratio step is 100 MHz.
const RatioUnitMHz = 100

// DefaultEnergyStatusUnit is the power-of-two divisor exponent for RAPL
// energy counters: one count is 2^-14 J (= 61 µJ), the Skylake-SP value.
const DefaultEnergyStatusUnit = 14

// ErrUnknownRegister is returned when reading or writing an address the
// socket does not implement.
type ErrUnknownRegister struct{ Addr uint32 }

func (e ErrUnknownRegister) Error() string {
	return fmt.Sprintf("msr: unknown register 0x%X", e.Addr)
}

// ErrReadOnly is returned when software writes a register only hardware
// may update.
type ErrReadOnly struct{ Addr uint32 }

func (e ErrReadOnly) Error() string {
	return fmt.Sprintf("msr: register 0x%X is read-only", e.Addr)
}

// numRegs is the number of implemented registers. Register storage is a
// dense array indexed by regIndex: the register file sits on the
// simulator's per-step hot path (the uncore controller and RAPL touch it
// every tick), and a fixed array of atomics is both allocation-free and
// an order of magnitude cheaper than the map+mutex it replaces, with
// identical values and visibility semantics.
const numRegs = 13

// regIndex maps a register address to its slot, or -1 when the socket
// does not implement it.
func regIndex(addr uint32) int {
	switch addr {
	case IA32MPerf:
		return 0
	case IA32APerf:
		return 1
	case IA32PerfStatus:
		return 2
	case IA32PerfCtl:
		return 3
	case IA32EnergyPerfBias:
		return 4
	case IA32FixedCtr0:
		return 5
	case IA32FixedCtr1:
		return 6
	case IA32FixedCtr2:
		return 7
	case MSRRaplPowerUnit:
		return 8
	case MSRPkgEnergyStatus:
		return 9
	case MSRDramEnergyStatus:
		return 10
	case MSRUncoreRatioLimit:
		return 11
	case MSRUncorePerfStatus:
		return 12
	default:
		return -1
	}
}

// File is the register file of one socket. The zero value is not usable;
// construct with NewFile.
type File struct {
	regs [numRegs]atomic.Uint64
}

// writableBySoftware reports whether EARL may write the register.
func writableBySoftware(addr uint32) bool {
	switch addr {
	case IA32PerfCtl, IA32EnergyPerfBias, MSRUncoreRatioLimit:
		return true
	}
	return false
}

// NewFile returns a register file with power-on defaults: uncore ratio
// limits set to the given hardware range, RAPL units programmed, and all
// counters zero.
func NewFile(uncoreMinRatio, uncoreMaxRatio uint64) *File {
	f := &File{}
	f.Init(uncoreMinRatio, uncoreMaxRatio)
	return f
}

// Init (re)programs power-on defaults in place, so a File embedded in a
// larger allocation — or recycled from a pool — starts from the same
// state NewFile produces.
func (f *File) Init(uncoreMinRatio, uncoreMaxRatio uint64) {
	for i := range f.regs {
		f.regs[i].Store(0)
	}
	f.regs[regIndex(IA32EnergyPerfBias)].Store(6) // BIOS default: balanced
	f.regs[regIndex(MSRRaplPowerUnit)].Store(DefaultEnergyStatusUnit << 8)
	f.regs[regIndex(MSRUncoreRatioLimit)].Store(EncodeUncoreRatioLimit(UncoreRatioLimit{
		MinRatio: uncoreMinRatio,
		MaxRatio: uncoreMaxRatio,
	}))
}

// Read returns the value of the register at addr.
func (f *File) Read(addr uint32) (uint64, error) {
	i := regIndex(addr)
	if i < 0 {
		return 0, ErrUnknownRegister{addr}
	}
	return f.regs[i].Load(), nil
}

// Write stores v into the register at addr, enforcing software
// writability rules.
func (f *File) Write(addr uint32, v uint64) error {
	i := regIndex(addr)
	if i < 0 {
		return ErrUnknownRegister{addr}
	}
	if !writableBySoftware(addr) {
		return ErrReadOnly{addr}
	}
	f.regs[i].Store(v)
	return nil
}

// WriteHw stores v into any implemented register, bypassing software
// writability. It is the hardware-side update path used by the simulator.
func (f *File) WriteHw(addr uint32, v uint64) error {
	i := regIndex(addr)
	if i < 0 {
		return ErrUnknownRegister{addr}
	}
	f.regs[i].Store(v)
	return nil
}

// AddHw adds delta to a counter register with 64-bit wraparound,
// returning the new value. RAPL energy counters wrap at 32 bits; callers
// must use AddEnergyHw for those.
func (f *File) AddHw(addr uint32, delta uint64) (uint64, error) {
	i := regIndex(addr)
	if i < 0 {
		return 0, ErrUnknownRegister{addr}
	}
	return f.regs[i].Add(delta), nil
}

// AddEnergyHw accumulates joules into a RAPL energy-status register,
// converting through the programmed energy unit and wrapping at 32 bits
// as real counters do. Fractional counts are carried by the caller; this
// method truncates, so callers should accumulate joules and convert once
// per update tick. It returns the new raw counter value.
func (f *File) AddEnergyHw(addr uint32, joules float64) (uint64, error) {
	i := regIndex(addr)
	if i < 0 {
		return 0, ErrUnknownRegister{addr}
	}
	esu := (f.regs[regIndex(MSRRaplPowerUnit)].Load() >> 8) & 0x1F
	counts := uint64(joules * float64(uint64(1)<<esu))
	for {
		old := f.regs[i].Load()
		v := (old + counts) & 0xFFFFFFFF
		if f.regs[i].CompareAndSwap(old, v) {
			return v, nil
		}
	}
}

// EnergyJoules converts a raw energy-status delta (already unwrapped) to
// joules using the programmed energy unit.
func (f *File) EnergyJoules(rawDelta uint64) float64 {
	esu := (f.regs[regIndex(MSRRaplPowerUnit)].Load() >> 8) & 0x1F
	return float64(rawDelta) / float64(uint64(1)<<esu)
}

// EnergyDelta computes the counter advance from prev to cur accounting
// for 32-bit wraparound, as RAPL readers must.
func EnergyDelta(prev, cur uint64) uint64 {
	prev &= 0xFFFFFFFF
	cur &= 0xFFFFFFFF
	if cur >= prev {
		return cur - prev
	}
	return cur + (1 << 32) - prev
}

// UncoreRatioLimit is the decoded form of MSR 0x620. Ratios are in
// 100 MHz units; MaxRatio occupies bits 6:0 and MinRatio bits 14:8.
type UncoreRatioLimit struct {
	MaxRatio uint64
	MinRatio uint64
}

// EncodeUncoreRatioLimit packs the limit into the register layout.
// Ratios are masked to their 7-bit fields.
func EncodeUncoreRatioLimit(u UncoreRatioLimit) uint64 {
	return (u.MaxRatio & 0x7F) | ((u.MinRatio & 0x7F) << 8)
}

// DecodeUncoreRatioLimit unpacks MSR 0x620.
func DecodeUncoreRatioLimit(v uint64) UncoreRatioLimit {
	return UncoreRatioLimit{
		MaxRatio: v & 0x7F,
		MinRatio: (v >> 8) & 0x7F,
	}
}

// EncodePerfCtl packs a requested core ratio into IA32_PERF_CTL layout
// (ratio in bits 15:8).
func EncodePerfCtl(ratio uint64) uint64 { return (ratio & 0xFF) << 8 }

// DecodePerfCtl extracts the requested core ratio from IA32_PERF_CTL.
func DecodePerfCtl(v uint64) uint64 { return (v >> 8) & 0xFF }

// EncodeUncorePerfStatus packs the current uncore ratio into MSR 0x621
// layout (bits 6:0).
func EncodeUncorePerfStatus(ratio uint64) uint64 { return ratio & 0x7F }

// DecodeUncorePerfStatus extracts the current uncore ratio from MSR 0x621.
func DecodeUncorePerfStatus(v uint64) uint64 { return v & 0x7F }
