package msr

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewFileDefaults(t *testing.T) {
	f := NewFile(12, 24)
	v, err := f.Read(MSRUncoreRatioLimit)
	if err != nil {
		t.Fatal(err)
	}
	u := DecodeUncoreRatioLimit(v)
	if u.MinRatio != 12 || u.MaxRatio != 24 {
		t.Errorf("uncore limits = %+v, want min 12 max 24", u)
	}
	unit, err := f.Read(MSRRaplPowerUnit)
	if err != nil {
		t.Fatal(err)
	}
	if esu := (unit >> 8) & 0x1F; esu != DefaultEnergyStatusUnit {
		t.Errorf("ESU = %d, want %d", esu, DefaultEnergyStatusUnit)
	}
	epb, err := f.Read(IA32EnergyPerfBias)
	if err != nil {
		t.Fatal(err)
	}
	if epb != 6 {
		t.Errorf("EPB default = %d, want 6", epb)
	}
}

func TestUnknownRegister(t *testing.T) {
	f := NewFile(12, 24)
	if _, err := f.Read(0xDEAD); err == nil {
		t.Error("expected error reading unknown register")
	} else {
		var u ErrUnknownRegister
		if !errors.As(err, &u) || u.Addr != 0xDEAD {
			t.Errorf("wrong error: %v", err)
		}
	}
	if err := f.Write(0xDEAD, 1); err == nil {
		t.Error("expected error writing unknown register")
	}
	if err := f.WriteHw(0xDEAD, 1); err == nil {
		t.Error("expected error hw-writing unknown register")
	}
	if _, err := f.AddHw(0xDEAD, 1); err == nil {
		t.Error("expected error hw-adding unknown register")
	}
	if _, err := f.AddEnergyHw(0xDEAD, 1); err == nil {
		t.Error("expected error adding energy to unknown register")
	}
}

func TestSoftwareWritability(t *testing.T) {
	f := NewFile(12, 24)
	// Counters must be read-only to software.
	for _, addr := range []uint32{
		IA32MPerf, IA32APerf, IA32FixedCtr0, IA32FixedCtr1, IA32FixedCtr2,
		MSRPkgEnergyStatus, MSRDramEnergyStatus, MSRUncorePerfStatus,
		IA32PerfStatus, MSRRaplPowerUnit,
	} {
		if err := f.Write(addr, 42); err == nil {
			t.Errorf("register 0x%X writable by software, want read-only", addr)
		} else {
			var ro ErrReadOnly
			if !errors.As(err, &ro) {
				t.Errorf("0x%X: wrong error type %v", addr, err)
			}
		}
	}
	// Control registers must be writable.
	for _, addr := range []uint32{IA32PerfCtl, IA32EnergyPerfBias, MSRUncoreRatioLimit} {
		if err := f.Write(addr, 1); err != nil {
			t.Errorf("register 0x%X: unexpected write error %v", addr, err)
		}
	}
	// Hardware can write anything implemented.
	if err := f.WriteHw(IA32FixedCtr0, 99); err != nil {
		t.Errorf("WriteHw: %v", err)
	}
	if v, _ := f.Read(IA32FixedCtr0); v != 99 {
		t.Errorf("counter = %d, want 99", v)
	}
}

func TestUncoreRatioLimitRoundTrip(t *testing.T) {
	fn := func(maxR, minR uint8) bool {
		u := UncoreRatioLimit{MaxRatio: uint64(maxR) & 0x7F, MinRatio: uint64(minR) & 0x7F}
		return DecodeUncoreRatioLimit(EncodeUncoreRatioLimit(u)) == u
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestUncoreRatioLimitLayout(t *testing.T) {
	// SDM layout: bits 6:0 max, bits 14:8 min. 2.4 GHz max / 1.2 GHz min
	// encodes as 0x0C18.
	v := EncodeUncoreRatioLimit(UncoreRatioLimit{MaxRatio: 24, MinRatio: 12})
	if v != 0x0C18 {
		t.Errorf("encoded = 0x%X, want 0x0C18", v)
	}
	u := DecodeUncoreRatioLimit(0x0C18)
	if u.MaxRatio != 24 || u.MinRatio != 12 {
		t.Errorf("decoded = %+v", u)
	}
	// Masking: out-of-field bits ignored.
	u = DecodeUncoreRatioLimit(0xFFFF_FFFF_FFFF_0C18)
	if u.MaxRatio != 0x18 || u.MinRatio != 0x0C {
		t.Errorf("masked decode = %+v", u)
	}
}

func TestPerfCtlRoundTrip(t *testing.T) {
	fn := func(r uint8) bool {
		return DecodePerfCtl(EncodePerfCtl(uint64(r))) == uint64(r)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
	if EncodePerfCtl(24) != 24<<8 {
		t.Errorf("PerfCtl layout wrong: 0x%X", EncodePerfCtl(24))
	}
}

func TestUncorePerfStatusRoundTrip(t *testing.T) {
	fn := func(r uint8) bool {
		ratio := uint64(r) & 0x7F
		return DecodeUncorePerfStatus(EncodeUncorePerfStatus(ratio)) == ratio
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestAddHwWraps64(t *testing.T) {
	f := NewFile(12, 24)
	if err := f.WriteHw(IA32FixedCtr0, math.MaxUint64-1); err != nil {
		t.Fatal(err)
	}
	v, err := f.AddHw(IA32FixedCtr0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("wrapped counter = %d, want 1", v)
	}
}

func TestEnergyAccumulationAndUnits(t *testing.T) {
	f := NewFile(12, 24)
	// 1 J at ESU 14 is 16384 counts.
	v, err := f.AddEnergyHw(MSRPkgEnergyStatus, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1<<DefaultEnergyStatusUnit {
		t.Errorf("counter = %d, want %d", v, 1<<DefaultEnergyStatusUnit)
	}
	if j := f.EnergyJoules(v); math.Abs(j-1.0) > 1e-9 {
		t.Errorf("EnergyJoules = %v, want 1", j)
	}
}

func TestEnergyCounterWraps32(t *testing.T) {
	f := NewFile(12, 24)
	if err := f.WriteHw(MSRPkgEnergyStatus, 0xFFFF_FFFF); err != nil {
		t.Fatal(err)
	}
	prev, _ := f.Read(MSRPkgEnergyStatus)
	v, err := f.AddEnergyHw(MSRPkgEnergyStatus, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if v > 0xFFFF_FFFF {
		t.Errorf("counter exceeded 32 bits: %d", v)
	}
	// The reader-side wraparound delta must still see ~1 J.
	d := EnergyDelta(prev, v)
	if j := f.EnergyJoules(d); math.Abs(j-1.0) > 1e-3 {
		t.Errorf("wrapped delta = %v J, want ~1", j)
	}
}

func TestEnergyDeltaProperty(t *testing.T) {
	// For any starting counter and any delta < 2^32, reconstructing the
	// delta across the wrap must be exact.
	fn := func(start uint32, d uint32) bool {
		cur := (uint64(start) + uint64(d)) & 0xFFFF_FFFF
		return EnergyDelta(uint64(start), cur) == uint64(d)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	// Hardware adds while software reads: must be race-free (run with
	// -race) and conserve the total.
	f := NewFile(12, 24)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			if _, err := f.AddHw(IA32FixedCtr0, 1); err != nil {
				t.Errorf("AddHw: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 100; i++ {
		if _, err := f.Read(IA32FixedCtr0); err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
	<-done
	v, _ := f.Read(IA32FixedCtr0)
	if v != 1000 {
		t.Errorf("counter = %d, want 1000", v)
	}
}
