package msr

import "testing"

// FuzzPerfCtl checks the IA32_PERF_CTL (0x199) encode/decode pair
// from both directions: the requested core ratio round-trips through
// bits 15:8 modulo the 8-bit field mask, and arbitrary raw register
// values round-trip exactly once the first decode has dropped the
// reserved bits.
func FuzzPerfCtl(f *testing.F) {
	f.Add(uint64(24), uint64(0))
	f.Add(uint64(0xFF), uint64(0xFFFFFFFFFFFFFFFF))
	f.Add(uint64(0), uint64(0x199))
	f.Add(uint64(256), uint64(1<<63))
	f.Fuzz(func(t *testing.T, ratio, raw uint64) {
		enc := EncodePerfCtl(ratio)
		if enc&^uint64(0xFF00) != 0 {
			t.Fatalf("EncodePerfCtl(%#x) = %#x sets bits outside 15:8", ratio, enc)
		}
		if dec := DecodePerfCtl(enc); dec != ratio&0xFF {
			t.Fatalf("DecodePerfCtl(EncodePerfCtl(%#x)) = %#x, want %#x", ratio, dec, ratio&0xFF)
		}
		if re := EncodePerfCtl(DecodePerfCtl(enc)); re != enc {
			t.Fatalf("encode(decode(%#x)) = %#x, want fixed point", enc, re)
		}

		// Raw-register direction: decode drops reserved bits, after
		// which encode/decode is the identity.
		dr := DecodePerfCtl(raw)
		if dr > 0xFF {
			t.Fatalf("DecodePerfCtl(%#x) = %#x exceeds the 8-bit field", raw, dr)
		}
		canon := EncodePerfCtl(dr)
		if canon != raw&0xFF00 {
			t.Fatalf("EncodePerfCtl(DecodePerfCtl(%#x)) = %#x, want %#x", raw, canon, raw&0xFF00)
		}
		if dr2 := DecodePerfCtl(canon); dr2 != dr {
			t.Fatalf("DecodePerfCtl(%#x) = %#x, want %#x", canon, dr2, dr)
		}
	})
}

// FuzzUncoreRatioLimit checks the MSR 0x620 (UNCORE_RATIO_LIMIT)
// encode/decode pair from both directions: fields round-trip through
// the register layout modulo the 7-bit field masks, and arbitrary raw
// register values round-trip exactly once the reserved bits are
// cleared by the first decode.
func FuzzUncoreRatioLimit(f *testing.F) {
	f.Add(uint64(24), uint64(12), uint64(0))
	f.Add(uint64(0x7F), uint64(0x7F), uint64(0xFFFFFFFFFFFFFFFF))
	f.Add(uint64(0), uint64(0), uint64(0x620))
	f.Add(uint64(128), uint64(255), uint64(1<<63))
	f.Fuzz(func(t *testing.T, maxRatio, minRatio, raw uint64) {
		enc := EncodeUncoreRatioLimit(UncoreRatioLimit{MaxRatio: maxRatio, MinRatio: minRatio})
		if enc&^uint64(0x7F7F) != 0 {
			t.Fatalf("encode(max=%#x,min=%#x) = %#x sets bits outside 14:8 and 6:0", maxRatio, minRatio, enc)
		}
		dec := DecodeUncoreRatioLimit(enc)
		if dec.MaxRatio != maxRatio&0x7F || dec.MinRatio != minRatio&0x7F {
			t.Fatalf("decode(encode(max=%#x,min=%#x)) = %+v, want masked inputs", maxRatio, minRatio, dec)
		}
		if re := EncodeUncoreRatioLimit(dec); re != enc {
			t.Fatalf("encode(decode(%#x)) = %#x, want fixed point", enc, re)
		}

		// Raw-register direction: decode drops reserved bits, after
		// which encode/decode is the identity.
		dr := DecodeUncoreRatioLimit(raw)
		if dr.MaxRatio > 0x7F || dr.MinRatio > 0x7F {
			t.Fatalf("decode(%#x) = %+v exceeds 7-bit fields", raw, dr)
		}
		canon := EncodeUncoreRatioLimit(dr)
		if canon != raw&0x7F7F {
			t.Fatalf("encode(decode(%#x)) = %#x, want %#x", raw, canon, raw&0x7F7F)
		}
		if dr2 := DecodeUncoreRatioLimit(canon); dr2 != dr {
			t.Fatalf("decode(%#x) = %+v, want %+v", canon, dr2, dr)
		}
	})
}
