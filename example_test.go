package goear_test

import (
	"fmt"
	"log"

	"goear"
)

// Compare a policy against the nominal baseline on a catalogue
// workload — the paper's central measurement.
func ExampleSession_Compare() {
	s := goear.NewSession()
	cmp, err := s.Compare("BT-MZ.C", goear.Config{
		Policy:      goear.PolicyMinEnergyEUFS,
		CPUPolicyTh: 0.05,
		UncPolicyTh: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy saving %.1f%% at %.1f%% time penalty (IMC %.2f GHz)\n",
		cmp.EnergySavingPct, cmp.TimePenaltyPct, cmp.Run.AvgIMCGHz)
}

// Pin the operating point to study one configuration, as the paper's
// Fig. 1 sweeps do.
func ExampleSession_Run_pinned() {
	s := goear.NewQuickSession()
	r, err := s.Run("SP-MZ.C", goear.Config{
		FixedCPUPstate: 1,   // nominal
		FixedUncoreGHz: 1.8, // pin MSR 0x620 min=max
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f W at IMC %.2f GHz\n", r.AvgPowerW, r.AvgIMCGHz)
}

// Regenerate one of the paper's artifacts as rendered text.
func ExampleSession_Experiment() {
	s := goear.NewSession()
	table3, err := s.Experiment("table3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table3)
}

// Enforce a cluster power budget with the global manager (EAR's
// energy-control service).
func ExampleSession_RunPowercapped() {
	s := goear.NewQuickSession()
	r, err := s.RunPowercapped("BQCD", goear.Config{
		Policy: goear.PolicyMinEnergy, CPUPolicyTh: 0.03,
	}, 1150 /* watts for the whole 4-node job */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster fit under %.0fW with final cap p%d (%.1f%% intervals over budget)\n",
		r.BudgetW, r.FinalCap, r.OverBudgetPct)
}
