module goear

go 1.22
