package goear

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"goear/internal/workload"
)

// shared session: model training is the expensive part; the facade's
// caching makes the rest cheap.
var (
	sessOnce sync.Once
	sess     *Session
)

func session() *Session {
	sessOnce.Do(func() { sess = NewQuickSession() })
	return sess
}

func TestWorkloadsAndPolicies(t *testing.T) {
	ws := Workloads()
	if len(ws) < 14 {
		t.Fatalf("workloads = %d, want >= 14", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if w.Name == "" || w.Nodes < 1 {
			t.Errorf("bad workload info %+v", w)
		}
		seen[w.Name] = true
	}
	for _, n := range []string{"BT-MZ.C", "HPCG", "DGEMM", "POP"} {
		if !seen[n] {
			t.Errorf("catalogue missing %s", n)
		}
	}
	ps := Policies()
	if ps[0] != PolicyNone {
		t.Errorf("first policy = %q, want none", ps[0])
	}
	found := 0
	for _, p := range ps {
		switch p {
		case PolicyMinEnergy, PolicyMinEnergyEUFS, PolicyMinTime, PolicyMinTimeEUFS, PolicyMonitoring:
			found++
		}
	}
	if found != 5 {
		t.Errorf("registered policies = %v", ps)
	}
}

func TestRunBaseline(t *testing.T) {
	r, err := session().Run("BT-MZ.C", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.TimeSec < 140 || r.TimeSec > 150 {
		t.Errorf("time = %v, want ~145 (Table II)", r.TimeSec)
	}
	if r.AvgPowerW < 320 || r.AvgPowerW > 345 {
		t.Errorf("power = %v, want ~332", r.AvgPowerW)
	}
	if r.Nodes != 1 || r.Policy != "none" {
		t.Errorf("run meta = %+v", r)
	}
}

func TestCompareEUFS(t *testing.T) {
	c, err := session().Compare("BT-MZ.C", Config{Policy: PolicyMinEnergyEUFS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.EnergySavingPct < 3 || c.EnergySavingPct > 12 {
		t.Errorf("energy saving = %v%%, want the paper's band", c.EnergySavingPct)
	}
	if c.TimePenaltyPct < 0 || c.TimePenaltyPct > 3 {
		t.Errorf("time penalty = %v%%", c.TimePenaltyPct)
	}
	if c.Run.AvgIMCGHz >= c.Baseline.AvgIMCGHz {
		t.Error("eUFS did not lower the uncore")
	}
}

func TestCompareNeedsPolicy(t *testing.T) {
	if _, err := session().Compare("BT-MZ.C", Config{}); err == nil {
		t.Error("expected error for comparison without policy")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := session().Run("nope", Config{}); err == nil {
		t.Error("expected error for unknown workload")
	}
	if _, err := session().Run("BT-MZ.C", Config{Policy: "bogus"}); err == nil {
		t.Error("expected error for unknown policy")
	}
	if _, err := session().Run("BT-MZ.C", Config{Runs: 7}); err == nil {
		t.Error("expected error for per-call run count")
	}
	var nilSess *Session
	if _, err := nilSess.Run("BT-MZ.C", Config{}); err == nil {
		t.Error("expected error for nil session")
	}
	if _, err := (&Session{}).Experiment("table2"); err == nil {
		t.Error("expected error for zero-value session")
	}
}

func TestFixedOperatingPoint(t *testing.T) {
	r, err := session().Run("BT-MZ.C", Config{
		Seed: 1, FixedCPUPstate: 1, FixedUncoreGHz: 1.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgIMCGHz > 1.85 || r.AvgIMCGHz < 1.7 {
		t.Errorf("pinned IMC = %v, want ~1.79", r.AvgIMCGHz)
	}
}

func TestExperimentRendering(t *testing.T) {
	out, err := session().Experiment("table2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "BT-MZ.C") {
		t.Errorf("unexpected rendering:\n%s", out)
	}
	if _, err := session().Experiment("nope"); err == nil {
		t.Error("expected error for unknown experiment")
	}
	tabs, err := session().ExperimentTables("table2")
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || len(tabs[0].Rows) != 5 {
		t.Errorf("table2 structure: %d tables", len(tabs))
	}
}

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"table7", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"summary", "ablations"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %q missing from IDs", w)
		}
	}
}

func TestRunPowercapped(t *testing.T) {
	free, err := session().Run("BT-MZ.C", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A budget 10% under the free draw must engage and land under it.
	budget := free.AvgPowerW * 0.9
	r, err := session().RunPowercapped("BT-MZ.C", Config{Seed: 1}, budget)
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalCap == 0 {
		t.Error("tight budget never engaged the cap")
	}
	if r.Run.AvgPowerW >= free.AvgPowerW {
		t.Errorf("capped power %.1fW not below free %.1fW", r.Run.AvgPowerW, free.AvgPowerW)
	}
	if r.Run.TimeSec < free.TimeSec {
		t.Error("capped run cannot be faster than free run")
	}
	// A huge budget is a no-op.
	loose, err := session().RunPowercapped("BT-MZ.C", Config{Seed: 1}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if loose.FinalCap != 0 || loose.OverBudgetPct != 0 {
		t.Errorf("loose budget engaged: %+v", loose)
	}
	var nilSess *Session
	if _, err := nilSess.RunPowercapped("BT-MZ.C", Config{}, 100); err == nil {
		t.Error("expected error for nil session")
	}
}

func TestRunSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	data, err := json.Marshal(workload.Template())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := session().RunSpecFile(path, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "my-app" || r.Nodes != 2 {
		t.Errorf("result = %+v", r)
	}
	if r.TimeSec < 290 || r.TimeSec > 310 {
		t.Errorf("time = %v, want ~300", r.TimeSec)
	}
	// With a policy the model trains on demand.
	r2, err := session().RunSpecFile(path, Config{Policy: PolicyMinEnergyEUFS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r2.AvgIMCGHz >= r.AvgIMCGHz {
		t.Errorf("eUFS did not lower the uncore on the custom spec: %v vs %v", r2.AvgIMCGHz, r.AvgIMCGHz)
	}
	if _, err := session().RunSpecFile(filepath.Join(dir, "missing.json"), Config{}); err == nil {
		t.Error("expected error for missing file")
	}
	var nilSess *Session
	if _, err := nilSess.RunSpecFile(path, Config{}); err == nil {
		t.Error("expected error for nil session")
	}
}
